//! Per-blob compression codecs for the v4 on-disk format.
//!
//! A v3 blob stores every packed array raw: `width u8 | len u64 | words…`.
//! v4 keeps that byte layout as the [`Codec::Raw`] case and adds two
//! entropy-coded alternatives for the packed-array section of a column
//! blob (the blob header — tag byte, dictionary gids, int min/max — is
//! never transformed, so a `Raw` v4 blob is byte-identical to its v3
//! counterpart):
//!
//! * [`Codec::Delta`] — delta-then-pack for the per-user-sorted time
//!   column: consecutive differences are zigzag-mapped, their *bit class*
//!   (minimal bit length) is range-ANS coded against the measured class
//!   distribution, and each value's low `class - 1` bits follow in an
//!   LSB-first bit stream (the top bit of a `k`-bit value is implied).
//!   This is the classic Elias-gamma-style split — cheap to decode, and
//!   the class stream soaks up the skew that fixed-width packing wastes.
//! * [`Codec::Ans`] — a table-driven range-ANS stage applied directly to
//!   the packed values, applicable when the alphabet fits the 12-bit
//!   table (`max value < 4096`); it collapses skewed low-cardinality
//!   columns (action codes, demographics) toward their empirical entropy.
//!
//! Selection happens at write time in `encode_array`: every applicable
//! candidate is actually encoded and the smallest wins, with the
//! deterministic tie-break `Raw < Delta < Ans` so identical inputs always
//! produce identical files (the append/compact byte-parity invariant
//! depends on this).
//!
//! The rANS core is the standard 32-bit/byte-renormalizing construction:
//! state in `[L, L << 8)` with `L = 1 << 23`, frequencies normalized to
//! sum to `1 << SCALE_BITS = 4096`, symbols encoded in reverse so the
//! decoder streams forward. The final encoder state leads the stream (4
//! bytes LE); decoding checks the state returns to `L` with every byte
//! consumed, which makes truncation and bit-flips detectable without a
//! checksum.
//!
//! ## Interleaved streams
//!
//! A single rANS state is a serial dependency chain: symbol `i+1`'s table
//! lookup needs symbol `i`'s renormalized state, so the decoder runs at
//! one `mul + shift + table load` latency per symbol no matter how wide
//! the machine is. Large sections therefore interleave
//! `INTERLEAVE_WAYS` independent states round-robin (symbol `i` belongs
//! to state `i % ways`) over **one shared renorm stream**: the per-group
//! state updates carry no cross-dependency and issue in parallel, and
//! only the stream cursor stays serial. Interleaved lanes also widen to
//! 64-bit states renormalized in 32-bit words (`RANS64_L`), so each
//! symbol pays at most one predictable renorm branch and one 4-byte load
//! instead of a byte-at-a-time loop. On disk the layouts are
//! distinguished by the section's first byte — a legacy single-state
//! section leads with its width byte (`<= 64`), an interleaved one with
//! the sub-tag `0x80 | ways` followed by the width byte, then the `ways`
//! final 64-bit states (8 bytes LE each) and the shared 32-bit renorm
//! words (see `docs/FORMAT.md`). Old files decode unchanged; new files
//! fall back to single-state below `INTERLEAVE_MIN_SYMBOLS` where the
//! extra initial states would not amortize.

use crate::bitpack::{bits_for, BitPacked};
use crate::error::StorageError;
use crate::Result;

/// How the packed-array section of one v4 blob is encoded on disk.
///
/// The tag byte is recorded per blob in the v4 footer (see
/// `docs/FORMAT.md`); `Raw` blobs are byte-identical to their v3 form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// v3 layout: `width u8 | len u64 | packed words…`.
    Raw = 0,
    /// Zigzag deltas, rANS-coded bit classes + explicit low bits.
    Delta = 1,
    /// rANS over the values themselves (alphabet < 4096).
    Ans = 2,
}

impl Codec {
    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Parse a footer tag byte.
    pub fn from_tag(tag: u8) -> Option<Codec> {
        match tag {
            0 => Some(Codec::Raw),
            1 => Some(Codec::Delta),
            2 => Some(Codec::Ans),
            _ => None,
        }
    }

    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Codec::Raw => "raw",
            Codec::Delta => "delta",
            Codec::Ans => "ans",
        }
    }
}

// ------------------------------------------------------------------ rANS

/// Frequencies are normalized to sum to `1 << SCALE_BITS`.
const SCALE_BITS: u32 = 12;
const SCALE: u32 = 1 << SCALE_BITS;
/// Lower bound of the normalized state interval.
const RANS_L: u32 = 1 << 23;

/// First-byte marker of an interleaved section: `0x80 | ways`. Width
/// bytes are `<= 64`, so the two layouts never collide.
const INTERLEAVE_TAG: u8 = 0x80;
/// Most lockstep states the format admits (`ways` in `2..=MAX_WAYS`).
const MAX_WAYS: usize = 4;
/// States the encoder writes when it interleaves.
const INTERLEAVE_WAYS: usize = 4;
/// Minimum entropy-coded symbol count before the encoder interleaves: the
/// extra initial states cost `4 * (ways - 1) + 1` bytes, which tiny
/// sections cannot amortize. Deterministic, so append/compact byte parity
/// is preserved.
const INTERLEAVE_MIN_SYMBOLS: usize = 64;

/// Cap on the eager output reservation of the decoders. Every length a
/// section declares is cross-checked against the footer's sizes *before*
/// any allocation, but both come from the same (untrusted) file — so the
/// decoders reserve at most this many values up front and let the vector
/// grow geometrically past it, tying large allocations to symbols
/// actually decoded from bytes actually present. Default chunks hold 16 K
/// rows; real sections never exceed this.
const MAX_EAGER_RESERVE: usize = 1 << 16;

/// A normalized symbol table: sorted distinct symbols with frequencies
/// summing to exactly [`SCALE`].
struct FreqTable {
    syms: Vec<u16>,
    freqs: Vec<u16>,
    /// Exclusive prefix sums of `freqs`.
    cum: Vec<u32>,
}

impl FreqTable {
    /// Build from per-symbol counts (parallel to `syms`, all non-zero).
    fn build(syms: Vec<u16>, counts: &[u64]) -> FreqTable {
        debug_assert_eq!(syms.len(), counts.len());
        let freqs = normalize_freqs(counts);
        let cum = prefix_sums(&freqs);
        FreqTable { syms, freqs, cum }
    }

    /// Serialized size: `n_syms u16 | (sym u16, freq u16) * n`.
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.syms.len() as u16).to_le_bytes());
        for (&s, &f) in self.syms.iter().zip(&self.freqs) {
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&f.to_le_bytes());
        }
    }

    /// Parse and validate a table whose symbols must be `<= max_sym`.
    fn read(buf: &mut &[u8], max_sym: u16) -> Result<FreqTable> {
        let n = take_u16(buf)? as usize;
        if n == 0 || n > SCALE as usize {
            return Err(StorageError::Corrupt(format!("bad codec table size {n}")));
        }
        let mut syms = Vec::with_capacity(n);
        let mut freqs = Vec::with_capacity(n);
        let mut total: u32 = 0;
        for i in 0..n {
            let s = take_u16(buf)?;
            let f = take_u16(buf)?;
            if s > max_sym {
                return Err(StorageError::Corrupt(format!(
                    "codec table symbol {s} exceeds maximum {max_sym}"
                )));
            }
            if i > 0 && s <= syms[i - 1] {
                return Err(StorageError::Corrupt("codec table symbols not increasing".into()));
            }
            if f == 0 {
                return Err(StorageError::Corrupt("codec table frequency is zero".into()));
            }
            total += f as u32;
            syms.push(s);
            freqs.push(f);
        }
        if total != SCALE {
            return Err(StorageError::Corrupt(format!(
                "codec table frequencies sum to {total}, want {SCALE}"
            )));
        }
        let cum = prefix_sums(&freqs);
        Ok(FreqTable { syms, freqs, cum })
    }

    /// Slot → symbol-index lookup covering all [`SCALE`] slots. Returned
    /// as a fixed-size array so `lut[state & (SCALE - 1)]` indexes without
    /// a bounds check in the hot loop.
    fn slot_lut(&self) -> Box<SlotLut> {
        let mut lut = vec![SlotEntry::default(); SCALE as usize].into_boxed_slice();
        for ((&sym, &freq), &cum) in self.syms.iter().zip(&self.freqs).zip(&self.cum) {
            for slot in cum..cum + freq as u32 {
                lut[slot as usize] = SlotEntry { sym, freq, cum };
            }
        }
        lut.try_into().ok().expect("lut has SCALE entries")
    }
}

/// One slot of the flattened decode table: everything the hot loop needs
/// in a single 8-byte load.
#[derive(Clone, Copy, Default)]
struct SlotEntry {
    sym: u16,
    freq: u16,
    cum: u32,
}

type SlotLut = [SlotEntry; SCALE as usize];

fn prefix_sums(freqs: &[u16]) -> Vec<u32> {
    let mut cum = Vec::with_capacity(freqs.len());
    let mut acc = 0u32;
    for &f in freqs {
        cum.push(acc);
        acc += f as u32;
    }
    cum
}

/// Scale raw counts to frequencies summing to exactly [`SCALE`], every
/// symbol keeping at least 1. Deterministic (pure integer arithmetic with
/// index tie-breaks) so that identical inputs always serialize
/// identically — append/compact byte-parity depends on it.
fn normalize_freqs(counts: &[u64]) -> Vec<u16> {
    let n = counts.len();
    debug_assert!(n >= 1 && n <= SCALE as usize);
    let total: u64 = counts.iter().sum();
    debug_assert!(total > 0);
    let mut freqs: Vec<u32> = counts
        .iter()
        .map(|&c| ((c as u128 * SCALE as u128 / total as u128) as u32).max(1))
        .collect();
    let mut sum: i64 = freqs.iter().map(|&f| f as i64).sum();
    if sum < SCALE as i64 {
        // Hand the rounding deficit to the heaviest symbols first.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(counts[i]), i));
        let mut k = 0usize;
        while sum < SCALE as i64 {
            freqs[order[k % n]] += 1;
            sum += 1;
            k += 1;
        }
    }
    while sum > SCALE as i64 {
        // The minimum-1 clamp oversubscribed; shave the largest frequency
        // (lowest index on ties) without dropping anyone to zero.
        let i = (0..n)
            .filter(|&i| freqs[i] > 1)
            .max_by_key(|&i| (freqs[i], std::cmp::Reverse(i)))
            .expect("sum > SCALE implies some freq > 1");
        let cut = ((sum - SCALE as i64) as u32).min(freqs[i] - 1);
        freqs[i] -= cut;
        sum -= cut as i64;
    }
    freqs.iter().map(|&f| f as u16).collect()
}

/// Lower bound of the widened state interval used by *interleaved* lanes:
/// 64-bit states renormalized in 32-bit words. One renorm check per
/// symbol with a predictable branch and a 4-byte load replaces the legacy
/// byte-at-a-time loop — the byte-renorm interleaved variant measured
/// only ~1.3–1.6x over single-state because its renorm branches
/// mispredict; the word-renorm one clears 2x.
const RANS64_L: u64 = 1 << 31;

/// rANS-encode `indices` (positions into `table`) with `ways` interleaved
/// states, symbol `i` on state `i % ways`.
///
/// `ways == 1` is the legacy single-state construction, byte for byte:
/// 32-bit state, byte renorm, final state leading the stream as 4 bytes
/// LE. `ways > 1` writes the interleaved layout: `ways` 64-bit states (8
/// bytes LE each, state 0 first) followed by the shared renormalization
/// stream of 32-bit words in decode order. Encoding runs in reverse; the
/// decoder, running forward, then meets each state's renorm words in
/// exactly push order reversed — the same argument as single-state,
/// because states share one stream but each word still belongs to exactly
/// one symbol position.
fn rans_encode(indices: &[usize], table: &FreqTable, ways: usize) -> Vec<u8> {
    debug_assert!(ways == 1 || (2..=MAX_WAYS).contains(&ways));
    if ways == 1 {
        let mut renorm: Vec<u8> = Vec::new();
        let mut x = RANS_L;
        for &s in indices.iter().rev() {
            let f = table.freqs[s] as u32;
            // Renormalize so the state transition below stays in range.
            let x_max = f << (23 - SCALE_BITS + 8);
            while x >= x_max {
                renorm.push(x as u8);
                x >>= 8;
            }
            x = ((x / f) << SCALE_BITS) + (x % f) + table.cum[s];
        }
        let mut stream = Vec::with_capacity(4 + renorm.len());
        stream.extend_from_slice(&x.to_le_bytes());
        stream.extend(renorm.iter().rev());
        return stream;
    }
    let mut renorm: Vec<u32> = Vec::new();
    let mut states = [RANS64_L; MAX_WAYS];
    for i in (0..indices.len()).rev() {
        let s = indices[i];
        let f = table.freqs[s] as u64;
        // 64-bit interval [L, L << 32): renormalize in 32-bit words.
        let x_max = f << (31 - SCALE_BITS as u64 + 32);
        let mut x = states[i % ways];
        while x >= x_max {
            renorm.push(x as u32);
            x >>= 32;
        }
        states[i % ways] = ((x / f) << SCALE_BITS) + (x % f) + table.cum[s] as u64;
    }
    let mut stream = Vec::with_capacity(8 * ways + 4 * renorm.len());
    for &x in &states[..ways] {
        stream.extend_from_slice(&x.to_le_bytes());
    }
    for &w in renorm.iter().rev() {
        stream.extend_from_slice(&w.to_le_bytes());
    }
    stream
}

/// `WAYS` lockstep rANS decoder states over one shared renorm stream.
///
/// `WIDE = false` is the legacy single-state construction (32-bit states,
/// byte renorm — only ever instantiated with `WAYS = 1`); `WIDE = true`
/// is the interleaved one (64-bit states, 32-bit-word renorm). Each group
/// decodes in two passes: `WAYS` table lookups + state updates (mutually
/// independent — this is where the ILP over the single-state chain comes
/// from), then `WAYS` renormalizations in symbol order (serial only on
/// the stream cursor, matching the encoder's word order exactly).
struct RansLanes<'a, const WAYS: usize, const WIDE: bool> {
    states: [u64; WAYS],
    stream: &'a [u8],
    pos: usize,
}

impl<'a, const WAYS: usize, const WIDE: bool> RansLanes<'a, WAYS, WIDE> {
    /// Bytes of one serialized state in the stream prefix.
    const STATE_BYTES: usize = if WIDE { 8 } else { 4 };
    /// Worst-case renorm bytes one *normalized* state consumes per step:
    /// one 32-bit word wide (post-update `x >= L >> SCALE_BITS = 2^19`,
    /// one word lifts it past `2^51`), two bytes legacy (post-update
    /// `x >= 2^11`, two bytes reach `2^27 > L`).
    const STEP_BYTES: usize = if WIDE { 4 } else { 2 };
    /// Lower bound of the normalized interval.
    const L: u64 = if WIDE { RANS64_L } else { RANS_L as u64 };

    /// Validates the state prefix is present — called before the output
    /// allocation, so a truncated stream never balloons memory.
    fn new(stream: &'a [u8]) -> Result<Self> {
        let prefix = Self::STATE_BYTES * WAYS;
        if stream.len() < prefix {
            return Err(StorageError::Corrupt("rANS stream shorter than its states".into()));
        }
        let mut states = [0u64; WAYS];
        for (j, st) in states.iter_mut().enumerate() {
            let at = Self::STATE_BYTES * j;
            *st = if WIDE {
                u64::from_le_bytes(stream[at..at + 8].try_into().expect("8-byte slice"))
            } else {
                u32::from_le_bytes(stream[at..at + 4].try_into().expect("4-byte slice")) as u64
            };
        }
        Ok(RansLanes { states, stream, pos: prefix })
    }

    /// The highest `pos` at which [`Self::step_group_fast`]'s worst-case
    /// byte consumption is certainly in bounds.
    fn fast_limit(&self) -> usize {
        self.stream.len().saturating_sub(Self::STEP_BYTES * WAYS)
    }

    /// The independent half of one step: table lookup + state update for
    /// every lane. No stream access, so lanes carry no cross-dependency.
    #[inline(always)]
    fn update_group(&mut self, lut: &SlotLut) -> [u16; WAYS] {
        let mut syms = [0u16; WAYS];
        for (sym, state) in syms.iter_mut().zip(self.states.iter_mut()) {
            let x = *state;
            let slot = x & (SCALE as u64 - 1);
            let e = lut[slot as usize];
            *state = (e.freq as u64) * (x >> SCALE_BITS) + slot - e.cum as u64;
            *sym = e.sym;
        }
        syms
    }

    /// Decode the next `WAYS` symbols, one per state, in symbol order.
    /// Caller must ensure `pos <= fast_limit()`, which lets the renorm
    /// run without per-access bounds checks. Crafted streams with
    /// denormalized states may leave a state below `L`; `finish` rejects
    /// them.
    ///
    /// `CMOV` picks the renorm style per call site: `true` loads the next
    /// word unconditionally and selects with a cmov — no mispredict flush,
    /// right when renorms fire often and erratically (ANS over values,
    /// ~every third symbol); `false` branches — cheaper when renorms are
    /// rare and predictable (delta classes, low entropy), where the
    /// unconditional load and select latency would only tax the common
    /// no-renorm path. Legacy byte renorm always branches.
    #[inline(always)]
    fn step_group_fast<const CMOV: bool>(&mut self, lut: &SlotLut) -> [u16; WAYS] {
        debug_assert!(self.pos <= self.fast_limit());
        let syms = self.update_group(lut);
        for j in 0..WAYS {
            let mut x = self.states[j];
            if WIDE && CMOV {
                let w = u32::from_le_bytes(
                    self.stream[self.pos..self.pos + 4].try_into().expect("4-byte slice"),
                );
                let need = x < Self::L;
                x = if need { (x << 32) | w as u64 } else { x };
                self.pos += 4 * need as usize;
            } else if WIDE {
                if x < Self::L {
                    let w = u32::from_le_bytes(
                        self.stream[self.pos..self.pos + 4].try_into().expect("4-byte slice"),
                    );
                    x = (x << 32) | w as u64;
                    self.pos += 4;
                }
            } else if x < Self::L {
                x = (x << 8) | self.stream[self.pos] as u64;
                self.pos += 1;
                if x < Self::L {
                    x = (x << 8) | self.stream[self.pos] as u64;
                    self.pos += 1;
                }
            }
            self.states[j] = x;
        }
        syms
    }

    /// [`Self::step_group_fast`] without the headroom requirement: exact
    /// bounds checks, for the last few groups of a stream.
    fn step_group(&mut self, lut: &SlotLut) -> Result<[u16; WAYS]> {
        let syms = self.update_group(lut);
        for j in 0..WAYS {
            self.renorm_checked(j)?;
        }
        Ok(syms)
    }

    /// Decode one symbol on state `j` (the trailing partial group).
    fn step_one(&mut self, j: usize, lut: &SlotLut) -> Result<u16> {
        let x = self.states[j];
        let slot = x & (SCALE as u64 - 1);
        let e = lut[slot as usize];
        self.states[j] = (e.freq as u64) * (x >> SCALE_BITS) + slot - e.cum as u64;
        self.renorm_checked(j)?;
        Ok(e.sym)
    }

    /// Renormalize lane `j` with exact truncation checks. The loop (not
    /// an `if`) also bounds crafted denormalized states.
    fn renorm_checked(&mut self, j: usize) -> Result<()> {
        let mut x = self.states[j];
        while x < Self::L {
            if WIDE {
                let Some(w) = self.stream.get(self.pos..self.pos + 4) else {
                    return Err(StorageError::Corrupt("rANS stream truncated".into()));
                };
                x = (x << 32) | u32::from_le_bytes(w.try_into().expect("4-byte slice")) as u64;
                self.pos += 4;
            } else {
                let Some(&b) = self.stream.get(self.pos) else {
                    return Err(StorageError::Corrupt("rANS stream truncated".into()));
                };
                x = (x << 8) | b as u64;
                self.pos += 1;
            }
        }
        self.states[j] = x;
        Ok(())
    }

    /// Every state must return to `L` with the stream fully consumed —
    /// the same truncation/tamper detection as single-state.
    fn finish(&self) -> Result<()> {
        if self.states.iter().any(|&x| x != Self::L) || self.pos != self.stream.len() {
            return Err(StorageError::Corrupt("rANS stream does not round-trip".into()));
        }
        Ok(())
    }
}

// ------------------------------------------------------- bit stream

/// LSB-first bit writer for the delta offset stream.
#[derive(Default)]
struct BitWriter {
    out: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    fn put(&mut self, bits: u64, n: u32) {
        debug_assert!(n <= 64 && (n == 64 || bits < (1u64 << n)));
        let lo = n.min(32);
        self.put_small(bits & low_mask(lo), lo);
        if n > 32 {
            self.put_small(bits >> 32, n - 32);
        }
    }

    fn put_small(&mut self, bits: u64, n: u32) {
        self.acc |= bits << self.nbits;
        self.nbits += n;
        while self.nbits >= 8 {
            self.out.push(self.acc as u8);
            self.acc >>= 8;
            self.nbits -= 8;
        }
    }

    fn finish(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.out.push(self.acc as u8);
        }
        self.out
    }
}

/// LSB-first bit cursor over the delta offset stream. Position is a plain
/// bit index (no shifting accumulator), so group decode can pull several
/// lanes' bits out of a single loaded window — see [`take_offsets`].
struct BitCursor<'a> {
    buf: &'a [u8],
    bitpos: usize,
}

impl<'a> BitCursor<'a> {
    fn new(buf: &'a [u8]) -> BitCursor<'a> {
        BitCursor { buf, bitpos: 0 }
    }

    /// Take `n <= 63` bits (offsets carry at most `width - 1`).
    #[inline(always)]
    fn take(&mut self, n: u32) -> Result<u64> {
        debug_assert!(n <= 63);
        let byte = self.bitpos >> 3;
        let sh = (self.bitpos & 7) as u32;
        if byte + 8 <= self.buf.len() && sh + n <= 64 {
            let w = u64::from_le_bytes(self.buf[byte..byte + 8].try_into().expect("8-byte slice"));
            self.bitpos += n as usize;
            Ok((w >> sh) & low_mask(n))
        } else {
            self.take_slow(n)
        }
    }

    /// Byte-at-a-time fallback: reads near the end of the stream, or ones
    /// whose bits span nine bytes.
    #[cold]
    fn take_slow(&mut self, n: u32) -> Result<u64> {
        let end = self.bitpos + n as usize;
        if end > self.buf.len() * 8 {
            return Err(StorageError::Corrupt("codec bit stream truncated".into()));
        }
        let mut v = 0u64;
        let mut got = 0u32;
        while got < n {
            let b = self.buf[self.bitpos >> 3] as u64;
            let sh = (self.bitpos & 7) as u32;
            let take = (8 - sh).min(n - got);
            v |= ((b >> sh) & low_mask(take)) << got;
            got += take;
            self.bitpos += take as usize;
        }
        Ok(v)
    }

    /// The stream must end exactly at the cursor's last byte, with any
    /// padding bits in that byte zero — the truncation/tamper detection
    /// the accumulator-style reader enforced.
    fn finish(self) -> Result<()> {
        let pad_zero = match self.bitpos % 8 {
            0 => true,
            r => self.buf[self.bitpos / 8] >> r == 0,
        };
        if self.bitpos.div_ceil(8) != self.buf.len() || !pad_zero {
            return Err(StorageError::Corrupt("codec bit stream has trailing data".into()));
        }
        Ok(())
    }
}

fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

// ------------------------------------------------------- array codecs

/// Exact on-disk size of a raw (v3) packed-array section. Saturates on
/// absurd lengths (only reachable from crafted input — decoders compare
/// this against the footer's bounded `uncompressed`, so a saturated value
/// simply fails that comparison).
pub fn raw_section_len(width: u8, len: u64) -> u64 {
    let words = if width == 0 { 0 } else { len.div_ceil((64 / width as u64).max(1)) };
    words.saturating_mul(8).saturating_add(9)
}

fn raw_section(packed: &BitPacked) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + packed.packed_bytes());
    out.push(packed.width());
    out.extend_from_slice(&(packed.len() as u64).to_le_bytes());
    for w in packed.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// The stream layout `encode_array` picks for a section of `n_symbols`
/// entropy-coded symbols.
fn auto_ways(n_symbols: usize) -> usize {
    if n_symbols >= INTERLEAVE_MIN_SYMBOLS {
        INTERLEAVE_WAYS
    } else {
        1
    }
}

/// Encode a packed array with the smallest applicable codec. Ties prefer
/// `Raw < Delta < Ans`, so a codec is only ever chosen when it is
/// *strictly* smaller than raw — which the v4 footer validation relies on.
pub(crate) fn encode_array(packed: &BitPacked) -> (Codec, Vec<u8>) {
    let mut best = (Codec::Raw, raw_section(packed));
    // Block-decode the candidate input in one sweep (the SIMD lane path
    // for narrow widths) instead of a per-element packed-word probe.
    let mut values = vec![0u64; packed.len()];
    packed.unpack_range(0, packed.len(), &mut values);
    if let Some(d) =
        encode_delta(&values, packed.width(), auto_ways(values.len().saturating_sub(1)))
    {
        if d.len() < best.1.len() {
            best = (Codec::Delta, d);
        }
    }
    if let Some(a) = encode_ans(&values, packed.width(), auto_ways(values.len())) {
        if a.len() < best.1.len() {
            best = (Codec::Ans, a);
        }
    }
    best
}

/// Decode a codec-transformed array section (the whole of `buf`) into a
/// [`BitPacked`], given the raw section size the footer promised.
pub(crate) fn decode_array(codec: Codec, buf: &[u8], expected_raw: u64) -> Result<BitPacked> {
    if codec == Codec::Raw {
        return Err(StorageError::Corrupt("raw sections decode on the v3 path".into()));
    }
    let mut values = Vec::new();
    let width = decode_section_into(codec, buf, expected_raw, None, &mut values)?;
    Ok(BitPacked::from_slice_with_width(&values, width))
}

/// Decode an array section straight into a caller-provided scratch vector
/// (cleared first), returning the section's declared width — the
/// decode-into-scratch path for consumers that block-decode anyway
/// (`persist::inspect`, compaction rewrite, the decode bench), skipping
/// the [`BitPacked`] repack. Unlike `decode_array` this also accepts
/// [`Codec::Raw`] sections (`width u8 | len u64 | words…`).
///
/// All size checks — the declared length against the footer's
/// `expected_raw` (and against `expected_len`, when the caller knows the
/// row count), the symbol table, and the stream's state prefix — run
/// *before* the output allocation, so truncated or crafted sections never
/// allocate their full declared size.
pub fn decode_section_into(
    codec: Codec,
    buf: &[u8],
    expected_raw: u64,
    expected_len: Option<u64>,
    out: &mut Vec<u64>,
) -> Result<u8> {
    match codec {
        Codec::Raw => decode_raw_into(buf, expected_raw, expected_len, out),
        Codec::Delta => decode_delta_into(buf, expected_raw, expected_len, out),
        Codec::Ans => decode_ans_into(buf, expected_raw, expected_len, out),
    }
}

/// Encode `values` as a `codec` section at `width`, forcing the stream
/// layout: `ways == 1` writes the legacy single-state layout, `2..=4` an
/// interleaved one (`Raw` ignores `ways`). `None` when the codec does not
/// apply. Bench / differential-test entry point; `encode_array` picks the
/// codec and layout itself.
pub fn encode_section(values: &[u64], width: u8, codec: Codec, ways: usize) -> Option<Vec<u8>> {
    match codec {
        Codec::Raw => Some(raw_section(&BitPacked::from_slice_with_width(values, width))),
        Codec::Delta => encode_delta(values, width, ways),
        Codec::Ans => encode_ans(values, width, ways),
    }
}

/// Check a section's declared element count against what the caller's
/// footer metadata says it must be (one value per row).
fn check_expected_len(len: u64, expected_len: Option<u64>) -> Result<()> {
    match expected_len {
        Some(e) if e != len => Err(StorageError::Corrupt(format!(
            "section declares {len} values, footer promises {e}"
        ))),
        _ => Ok(()),
    }
}

/// Decode a raw (v3-layout) section into `out`. Word presence is checked
/// against the actual buffer before any allocation.
fn decode_raw_into(
    buf: &[u8],
    expected_raw: u64,
    expected_len: Option<u64>,
    out: &mut Vec<u64>,
) -> Result<u8> {
    let mut buf = buf;
    let width = take_u8(&mut buf)?;
    if width > 64 {
        return Err(StorageError::Corrupt(format!("bad bit width {width}")));
    }
    let len = take_u64(&mut buf)?;
    if raw_section_len(width, len) != expected_raw {
        return Err(StorageError::Corrupt(format!(
            "raw section declares {len} x {width}-bit values, which contradicts the footer's \
             uncompressed size"
        )));
    }
    check_expected_len(len, expected_len)?;
    let len = len as usize;
    let words = if width == 0 { 0 } else { len.div_ceil((64 / width as usize).max(1)) };
    if buf.len() != words * 8 {
        return Err(StorageError::Corrupt("raw section word count disagrees with input".into()));
    }
    let mut ws = Vec::with_capacity(words);
    for chunk in buf.chunks_exact(8) {
        ws.push(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    let packed = BitPacked::from_raw(width, len, ws)?;
    out.clear();
    out.resize(len, 0);
    packed.unpack_range(0, len, out);
    Ok(width)
}

/// Read the section's stream layout from its first byte(s): a legacy
/// single-state section leads with its width byte (`<= 64`), an
/// interleaved one with `0x80 | ways` followed by the width byte.
fn take_layout(buf: &mut &[u8]) -> Result<(usize, u8)> {
    let b = take_u8(buf)?;
    if b < INTERLEAVE_TAG {
        if b > 64 {
            return Err(StorageError::Corrupt(format!("bad bit width {b}")));
        }
        return Ok((1, b));
    }
    let ways = (b & 0x7f) as usize;
    if !(2..=MAX_WAYS).contains(&ways) {
        return Err(StorageError::Corrupt(format!("bad interleave sub-tag {b:#04x}")));
    }
    let width = take_u8(buf)?;
    if width > 64 {
        return Err(StorageError::Corrupt(format!("bad bit width {width}")));
    }
    Ok((ways, width))
}

/// Class symbol for one delta: `2 * bits(|d|) + sign`. Carrying the sign
/// in the rANS alphabet instead of a zigzag bit lets the entropy coder
/// learn sign skew — on a sorted-per-user time column nearly every delta
/// is non-negative, so the sign costs ~0 bits instead of 1 per value.
fn delta_sym(d: i64) -> (u16, u64) {
    let mag = d.unsigned_abs();
    ((bits_for(mag) as u16) << 1 | (d < 0) as u16, mag)
}

const DELTA_MAX_SYM: u16 = 64 << 1 | 1;

/// Per-class decode tables, indexed by class symbol: explicit offset-bit
/// count (`k - 1` for magnitude bit-length `k >= 1`), the low-bit mask of
/// that count, and the magnitude's implicit top bit (`2^(k-1)`, or 0 for
/// class 0). One L1 load each replaces the compare / saturating-subtract
/// / variable-shift chains in the hot loop — the offset side of delta
/// decode is instruction-throughput-bound, not latency-bound, so trading
/// ALU ops for tiny table loads is a direct win. Indexed `sym & 0xff`:
/// the frequency-table reader bounds symbols to [`DELTA_MAX_SYM`], so the
/// mask never changes a valid index, it only keeps crafted input in
/// bounds without a checked branch. Entries past `DELTA_MAX_SYM` are
/// zero and unreachable.
const DELTA_MS: [u8; 256] = build_delta_tables().0;
const DELTA_MASK: [u64; 256] = build_delta_tables().1;
const DELTA_TOP: [u64; 256] = build_delta_tables().2;

const fn build_delta_tables() -> ([u8; 256], [u64; 256], [u64; 256]) {
    let mut ms = [0u8; 256];
    let mut mask = [0u64; 256];
    let mut top = [0u64; 256];
    let mut sym = 0usize;
    while sym <= DELTA_MAX_SYM as usize {
        let k = sym >> 1;
        if k >= 1 {
            let m = k - 1;
            ms[sym] = m as u8;
            mask[sym] = if m == 0 { 0 } else { u64::MAX >> (64 - m) };
            top[sym] = 1u64 << m;
        }
        sym += 1;
    }
    (ms, mask, top)
}

/// Delta codec: `[0x80|ways u8]? | width u8 | len u64 | first u64 | class
/// table | class_stream_len u32 | class stream | offset bits`. The `first`
/// field is present for `len >= 1`, everything after it for `len >= 2`.
/// The class alphabet is `(magnitude bit-length, sign)` pairs; a
/// magnitude's sub-top bits go to the offset stream verbatim.
pub(crate) fn encode_delta(values: &[u64], width: u8, ways: usize) -> Option<Vec<u8>> {
    debug_assert!(ways == 1 || (2..=MAX_WAYS).contains(&ways));
    let mut out = Vec::new();
    if ways > 1 {
        out.push(INTERLEAVE_TAG | ways as u8);
    }
    out.push(width);
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    let Some((&first, rest)) = values.split_first() else { return Some(out) };
    out.extend_from_slice(&first.to_le_bytes());
    if rest.is_empty() {
        return Some(out);
    }
    let mut mags = Vec::with_capacity(rest.len());
    let mut class_counts = [0u64; DELTA_MAX_SYM as usize + 1];
    let mut prev = first;
    for &v in rest {
        let (sym, mag) = delta_sym(v.wrapping_sub(prev) as i64);
        class_counts[sym as usize] += 1;
        mags.push((sym, mag));
        prev = v;
    }
    let syms: Vec<u16> = (0..=DELTA_MAX_SYM).filter(|&c| class_counts[c as usize] > 0).collect();
    let counts: Vec<u64> = syms.iter().map(|&c| class_counts[c as usize]).collect();
    let table = FreqTable::build(syms, &counts);
    let index_of = |sym: u16| table.syms.binary_search(&sym).unwrap();
    let indices: Vec<usize> = mags.iter().map(|&(sym, _)| index_of(sym)).collect();
    let class_stream = rans_encode(&indices, &table, ways);

    table.write(&mut out);
    out.extend_from_slice(&(class_stream.len() as u32).to_le_bytes());
    out.extend_from_slice(&class_stream);
    let mut bits = BitWriter::default();
    for &(sym, mag) in &mags {
        let k = (sym >> 1) as u32;
        if k >= 2 {
            bits.put(mag & low_mask(k - 1), k - 1);
        }
    }
    out.extend_from_slice(&bits.finish());
    Some(out)
}

fn decode_delta_into(
    buf: &[u8],
    expected_raw: u64,
    expected_len: Option<u64>,
    out: &mut Vec<u64>,
) -> Result<u8> {
    let mut buf = buf;
    let (ways, width) = take_layout(&mut buf)?;
    let len = take_u64(&mut buf)?;
    if raw_section_len(width, len) != expected_raw {
        return Err(StorageError::Corrupt(format!(
            "delta section declares {len} x {width}-bit values, which contradicts the footer's \
             uncompressed size"
        )));
    }
    check_expected_len(len, expected_len)?;
    let fits = |v: u64| width == 64 || v < (1u64 << width);
    out.clear();
    if len == 0 {
        expect_consumed(buf)?;
        return Ok(width);
    }
    let first = take_u64(&mut buf)?;
    if !fits(first) {
        return Err(StorageError::Corrupt("delta first value exceeds declared width".into()));
    }
    if len == 1 {
        expect_consumed(buf)?;
        out.push(first);
        return Ok(width);
    }
    let table = FreqTable::read(&mut buf, DELTA_MAX_SYM)?;
    let class_stream_len = take_u32(&mut buf)? as usize;
    if class_stream_len > buf.len() {
        return Err(StorageError::Corrupt("delta class stream overruns blob".into()));
    }
    let (class_stream, offset_bytes) = buf.split_at(class_stream_len);
    let n = len as usize - 1;
    match ways {
        1 => delta_body::<1, false>(class_stream, offset_bytes, n, first, width, &table, out),
        2 => delta_body::<2, true>(class_stream, offset_bytes, n, first, width, &table, out),
        3 => delta_body::<3, true>(class_stream, offset_bytes, n, first, width, &table, out),
        4 => delta_body::<4, true>(class_stream, offset_bytes, n, first, width, &table, out),
        _ => unreachable!("take_layout bounds ways"),
    }?;
    Ok(width)
}

/// Fused rANS + offset-bit delta decode loop, monomorphized per stream
/// width so the group loops unroll. Decoding the class and its offset
/// bits in one pass avoids materializing the class array (measurably
/// faster on the time column, the largest blob in every file).
fn delta_body<const WAYS: usize, const WIDE: bool>(
    class_stream: &[u8],
    offset_bytes: &[u8],
    n: usize,
    first: u64,
    width: u8,
    table: &FreqTable,
    out: &mut Vec<u64>,
) -> Result<()> {
    let lut = table.slot_lut();
    let mut lanes = RansLanes::<WAYS, WIDE>::new(class_stream)?;
    let fast_limit = lanes.fast_limit();
    let mut bits = BitCursor::new(offset_bytes);
    out.reserve((n + 1).min(MAX_EAGER_RESERVE));
    out.push(first);
    let wmask = low_mask(width as u32);
    let mut prev = first;
    // Width violations accumulate into `bad` instead of branching per
    // value; one check at the end fails the whole decode either way.
    let mut bad = 0u64;
    for _ in 0..n / WAYS {
        let syms = if lanes.pos <= fast_limit {
            lanes.step_group_fast::<false>(&lut)
        } else {
            lanes.step_group(&lut)?
        };
        let offs = take_offsets::<WAYS>(&mut bits, &syms)?;
        let mut vs = [0u64; WAYS];
        for j in 0..WAYS {
            let mag = DELTA_TOP[(syms[j] & 0xff) as usize] | offs[j];
            let s = (syms[j] & 1) as u64;
            let d = (mag ^ s.wrapping_neg()).wrapping_add(s);
            prev = prev.wrapping_add(d);
            vs[j] = prev;
        }
        // Accumulate the raw values and mask once per group: cheaper than
        // a masked test per value, same final verdict.
        for &v in &vs {
            bad |= v;
        }
        // One grow check per group instead of one per value.
        out.extend_from_slice(&vs);
    }
    for j in 0..n % WAYS {
        let sym = lanes.step_one(j, &lut)?;
        let m = DELTA_MS[(sym & 0xff) as usize] as u32;
        let off = if m > 0 { bits.take(m)? } else { 0 };
        let mag = DELTA_TOP[(sym & 0xff) as usize] | off;
        let s = (sym & 1) as u64;
        let d = (mag ^ s.wrapping_neg()).wrapping_add(s);
        let v = prev.wrapping_add(d);
        bad |= v;
        out.push(v);
        prev = v;
    }
    if bad & !wmask != 0 {
        return Err(StorageError::Corrupt("delta value exceeds declared width".into()));
    }
    lanes.finish()?;
    bits.finish()
}

/// Pull one group's verbatim offset bits: lane `j` takes
/// `DELTA_MS[syms[j]]` bits (none for classes 0 and 1). When the whole
/// group's bits fit one 64-bit window, a single unaligned load feeds all
/// four lanes; each lane then masks its bits off the bottom and shifts
/// the window down ([`DELTA_MASK`] makes that an `and` + `shr` per lane,
/// no per-lane shift-amount prefix sums). With the `simd` feature and a
/// 4-way group the lanes are instead extracted in parallel through
/// per-lane variable shifts ([`U64x4`](crate::bitpack)).
#[inline(always)]
fn take_offsets<const WAYS: usize>(
    bits: &mut BitCursor,
    syms: &[u16; WAYS],
) -> Result<[u64; WAYS]> {
    let mut ms = [0u32; WAYS];
    let mut total = 0u32;
    for j in 0..WAYS {
        ms[j] = DELTA_MS[(syms[j] & 0xff) as usize] as u32;
        total += ms[j];
    }
    let byte = bits.bitpos >> 3;
    let sh = (bits.bitpos & 7) as u32;
    // `<= 63` (not 64) keeps every shift below strictly in range with no
    // per-lane clamping; the skipped exactly-64-bit case falls through to
    // the cursor path.
    if sh + total <= 63 && byte + 8 <= bits.buf.len() {
        // One unaligned load covers the whole group's bits.
        let w = u64::from_le_bytes(bits.buf[byte..byte + 8].try_into().expect("8-byte slice"));
        bits.bitpos += total as usize;
        let w = w >> sh;
        #[cfg(feature = "simd")]
        if WAYS == 4 {
            use crate::bitpack::U64x4;
            let s1 = ms[0];
            let s2 = s1 + ms[1];
            let s3 = s2 + ms[2];
            let lanes = U64x4::splat(w)
                .shr_lanes([0, s1, s2, s3])
                .and_lanes([
                    DELTA_MASK[(syms[0] & 0xff) as usize],
                    DELTA_MASK[(syms[1] & 0xff) as usize],
                    DELTA_MASK[(syms[2] & 0xff) as usize],
                    DELTA_MASK[(syms[3] & 0xff) as usize],
                ])
                .to_array();
            let mut out = [0u64; WAYS];
            out.copy_from_slice(&lanes);
            return Ok(out);
        }
        let mut out = [0u64; WAYS];
        let mut w = w;
        for j in 0..WAYS {
            out[j] = w & DELTA_MASK[(syms[j] & 0xff) as usize];
            w >>= ms[j];
        }
        return Ok(out);
    }
    let mut out = [0u64; WAYS];
    for j in 0..WAYS {
        if ms[j] > 0 {
            out[j] = bits.take(ms[j])?;
        }
    }
    Ok(out)
}

/// ANS codec: `[0x80|ways u8]? | width u8 | len u64 | value table | rANS
/// stream`. Applicable when every value fits the 12-bit table alphabet.
pub(crate) fn encode_ans(values: &[u64], width: u8, ways: usize) -> Option<Vec<u8>> {
    debug_assert!(ways == 1 || (2..=MAX_WAYS).contains(&ways));
    if values.is_empty() || values.iter().any(|&v| v >= SCALE as u64) {
        return None;
    }
    let mut counts = [0u64; SCALE as usize];
    for &v in values {
        counts[v as usize] += 1;
    }
    let syms: Vec<u16> = (0..SCALE as u16).filter(|&v| counts[v as usize] > 0).collect();
    let sym_counts: Vec<u64> = syms.iter().map(|&v| counts[v as usize]).collect();
    let mut index_of = [0u16; SCALE as usize];
    for (i, &v) in syms.iter().enumerate() {
        index_of[v as usize] = i as u16;
    }
    let table = FreqTable::build(syms, &sym_counts);
    let indices: Vec<usize> = values.iter().map(|&v| index_of[v as usize] as usize).collect();
    let stream = rans_encode(&indices, &table, ways);

    let mut out = Vec::with_capacity(10 + 2 + 4 * table.syms.len() + stream.len());
    if ways > 1 {
        out.push(INTERLEAVE_TAG | ways as u8);
    }
    out.push(width);
    out.extend_from_slice(&(values.len() as u64).to_le_bytes());
    table.write(&mut out);
    out.extend_from_slice(&stream);
    Some(out)
}

fn decode_ans_into(
    buf: &[u8],
    expected_raw: u64,
    expected_len: Option<u64>,
    out: &mut Vec<u64>,
) -> Result<u8> {
    let mut buf = buf;
    let (ways, width) = take_layout(&mut buf)?;
    let len = take_u64(&mut buf)?;
    if len == 0 || raw_section_len(width, len) != expected_raw {
        return Err(StorageError::Corrupt(format!(
            "ANS section declares {len} x {width}-bit values, which contradicts the footer's \
             uncompressed size"
        )));
    }
    check_expected_len(len, expected_len)?;
    let table = FreqTable::read(&mut buf, SCALE as u16 - 1)?;
    if let Some(&top) = table.syms.last() {
        if !(width == 64 || (top as u64) < (1u64 << width)) {
            return Err(StorageError::Corrupt("ANS symbol exceeds declared width".into()));
        }
    }
    out.clear();
    let n = len as usize;
    match ways {
        1 => ans_body::<1, false>(buf, n, &table, out),
        2 => ans_body::<2, true>(buf, n, &table, out),
        3 => ans_body::<3, true>(buf, n, &table, out),
        4 => ans_body::<4, true>(buf, n, &table, out),
        _ => unreachable!("take_layout bounds ways"),
    }?;
    Ok(width)
}

fn ans_body<const WAYS: usize, const WIDE: bool>(
    stream: &[u8],
    n: usize,
    table: &FreqTable,
    out: &mut Vec<u64>,
) -> Result<()> {
    let lut = table.slot_lut();
    let mut lanes = RansLanes::<WAYS, WIDE>::new(stream)?;
    let fast_limit = lanes.fast_limit();
    out.reserve(n.min(MAX_EAGER_RESERVE));
    for _ in 0..n / WAYS {
        let syms = if lanes.pos <= fast_limit {
            lanes.step_group_fast::<true>(&lut)
        } else {
            lanes.step_group(&lut)?
        };
        let mut vs = [0u64; WAYS];
        for j in 0..WAYS {
            vs[j] = syms[j] as u64;
        }
        // One grow check per group instead of one per value.
        out.extend_from_slice(&vs);
    }
    for j in 0..n % WAYS {
        out.push(lanes.step_one(j, &lut)? as u64);
    }
    lanes.finish()
}

// ------------------------------------------------------- byte readers

fn take_u8(buf: &mut &[u8]) -> Result<u8> {
    let (&b, rest) =
        buf.split_first().ok_or_else(|| StorageError::Corrupt("codec section truncated".into()))?;
    *buf = rest;
    Ok(b)
}

fn take_bytes<const N: usize>(buf: &mut &[u8]) -> Result<[u8; N]> {
    if buf.len() < N {
        return Err(StorageError::Corrupt("codec section truncated".into()));
    }
    let (head, rest) = buf.split_at(N);
    *buf = rest;
    Ok(head.try_into().expect("split_at guarantees N bytes"))
}

fn take_u16(buf: &mut &[u8]) -> Result<u16> {
    Ok(u16::from_le_bytes(take_bytes::<2>(buf)?))
}

fn take_u32(buf: &mut &[u8]) -> Result<u32> {
    Ok(u32::from_le_bytes(take_bytes::<4>(buf)?))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64> {
    Ok(u64::from_le_bytes(take_bytes::<8>(buf)?))
}

fn expect_consumed(buf: &[u8]) -> Result<()> {
    if buf.is_empty() {
        Ok(())
    } else {
        Err(StorageError::Corrupt(format!("codec section has {} trailing bytes", buf.len())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn packed(values: &[u64]) -> BitPacked {
        BitPacked::from_slice(values)
    }

    fn decode_delta(buf: &[u8], expected_raw: u64) -> Result<BitPacked> {
        decode_array(Codec::Delta, buf, expected_raw)
    }

    fn decode_ans(buf: &[u8], expected_raw: u64) -> Result<BitPacked> {
        decode_array(Codec::Ans, buf, expected_raw)
    }

    fn roundtrip_delta(values: &[u64], width: u8) {
        let raw = raw_section_len(width, values.len() as u64);
        for ways in [1, 2, 4] {
            let enc = encode_delta(values, width, ways).expect("delta always encodes");
            let dec = decode_delta(&enc, raw).expect("decodes");
            assert_eq!(dec.to_vec(), values, "ways={ways}");
            assert_eq!(dec.width(), width);
            // The scratch path must agree with the BitPacked path.
            let mut scratch = vec![0xdead; 3];
            let w = decode_section_into(
                Codec::Delta,
                &enc,
                raw,
                Some(values.len() as u64),
                &mut scratch,
            )
            .expect("scratch decodes");
            assert_eq!(w, width);
            assert_eq!(scratch, values, "ways={ways} scratch");
        }
    }

    fn roundtrip_ans(values: &[u64], width: u8) -> bool {
        let raw = raw_section_len(width, values.len() as u64);
        for ways in [1, 2, 4] {
            let Some(enc) = encode_ans(values, width, ways) else { return false };
            let dec = decode_ans(&enc, raw).expect("decodes");
            assert_eq!(dec.to_vec(), values, "ways={ways}");
            assert_eq!(dec.width(), width);
            let mut scratch = Vec::new();
            let w =
                decode_section_into(Codec::Ans, &enc, raw, Some(values.len() as u64), &mut scratch)
                    .expect("scratch decodes");
            assert_eq!(w, width);
            assert_eq!(scratch, values, "ways={ways} scratch");
        }
        true
    }

    #[test]
    fn delta_roundtrips_edge_shapes() {
        roundtrip_delta(&[], 7);
        roundtrip_delta(&[], 0);
        roundtrip_delta(&[42], 6);
        roundtrip_delta(&[0, 0, 0], 0);
        roundtrip_delta(&[5, 5, 5, 5], 3);
        roundtrip_delta(&[u64::MAX, 0, u64::MAX, 1], 64);
        roundtrip_delta(&(0..1000u64).collect::<Vec<_>>(), 10);
        let sawtooth: Vec<u64> = (0..500u64).map(|i| (i % 97) * 31).collect();
        roundtrip_delta(&sawtooth, 12);
    }

    #[test]
    fn ans_roundtrips_edge_shapes() {
        assert!(!roundtrip_ans(&[], 1), "empty arrays are not ANS-applicable");
        assert!(roundtrip_ans(&[3], 2));
        assert!(roundtrip_ans(&[0, 0, 0, 0], 0));
        assert!(roundtrip_ans(&[4095; 10], 12));
        assert!(!roundtrip_ans(&[4096], 13), "alphabet must stay below the table size");
        let skewed: Vec<u64> = (0..2000u64).map(|i| if i % 17 == 0 { i % 7 } else { 0 }).collect();
        assert!(roundtrip_ans(&skewed, 3));
    }

    #[test]
    fn interleaved_streams_carry_the_sub_tag() {
        let values: Vec<u64> = (0..500u64).map(|i| i * 3).collect();
        let single = encode_delta(&values, 11, 1).unwrap();
        let four = encode_delta(&values, 11, 4).unwrap();
        assert_eq!(single[0], 11, "legacy sections lead with the width byte");
        assert_eq!(four[0], 0x84, "interleaved sections lead with 0x80 | ways");
        assert_eq!(four[1], 11);
        // Large arrays auto-select the interleaved layout.
        let (codec, bytes) = encode_array(&packed(&values));
        assert_eq!(codec, Codec::Delta);
        assert_eq!(bytes[0], 0x84);
        // Tiny arrays stay single-state when a codec wins at all.
        let tiny: Vec<u64> = (0..INTERLEAVE_MIN_SYMBOLS as u64).collect(); // 64 values = 63 deltas
        let (_, bytes) = encode_array(&packed(&tiny));
        assert!(bytes[0] < INTERLEAVE_TAG);
    }

    #[test]
    fn ans_beats_raw_on_skewed_data() {
        // 10K values, 95% zeros: rANS should land near the ~0.3-bit
        // entropy, far below the 3-bit packed representation.
        let values: Vec<u64> =
            (0..10_000u64).map(|i| if i % 20 == 0 { 1 + i % 7 } else { 0 }).collect();
        let p = packed(&values);
        let (codec, bytes) = encode_array(&p);
        assert_eq!(codec, Codec::Ans);
        assert!(
            bytes.len() * 4 < raw_section_len(p.width(), p.len() as u64) as usize,
            "expected >=4x on 95%-constant data, got {} of {}",
            bytes.len(),
            raw_section_len(p.width(), p.len() as u64)
        );
    }

    #[test]
    fn delta_beats_raw_on_sorted_data() {
        let values: Vec<u64> = (0..5_000u64).map(|i| 1_700_000_000 + i * 13 + (i % 5)).collect();
        let p = packed(&values);
        let (codec, bytes) = encode_array(&p);
        assert_eq!(codec, Codec::Delta);
        assert!(bytes.len() * 2 < raw_section_len(p.width(), p.len() as u64) as usize);
    }

    #[test]
    fn selection_prefers_raw_on_ties_and_tiny_arrays() {
        // Tiny arrays: the table + state overhead always loses to raw.
        let (codec, bytes) = encode_array(&packed(&[9, 3]));
        assert_eq!(codec, Codec::Raw);
        assert_eq!(bytes, raw_section(&packed(&[9, 3])));
    }

    #[test]
    fn selection_is_deterministic() {
        let values: Vec<u64> = (0..3_000u64).map(|i| (i * 2654435761) % 4096).collect();
        let p = packed(&values);
        let a = encode_array(&p);
        let b = encode_array(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_truncation_and_tampering() {
        let values: Vec<u64> = (0..400u64).map(|i| i * 3).collect();
        let raw = raw_section_len(11, 400);
        for ways in [1usize, 4] {
            let enc = encode_delta(&values, 11, ways).unwrap();
            for cut in [1, 4, 9, 12, enc.len() / 2, enc.len() - 1] {
                assert!(
                    decode_delta(&enc[..cut], raw).is_err(),
                    "ways={ways}: truncation at {cut} accepted"
                );
            }
            // Flip a byte in every region (sub-tag, header, table,
            // streams): decode must either reject it or at minimum never
            // panic.
            for i in 0..enc.len() {
                let mut bad = enc.clone();
                bad[i] ^= 0x5a;
                let _ = decode_delta(&bad, raw);
            }
            // A declared length that disagrees with the footer's raw size.
            assert!(decode_delta(&enc, raw + 8).is_err());
            // A declared length that disagrees with the caller's row count.
            let mut scratch = Vec::new();
            assert!(decode_section_into(Codec::Delta, &enc, raw, Some(401), &mut scratch).is_err());

            let ans = encode_ans(&values, 11, ways).unwrap();
            for cut in [1, 4, 9, 11, ans.len() - 1] {
                assert!(decode_ans(&ans[..cut], raw).is_err(), "ways={ways}: cut {cut}");
            }
            for i in 0..ans.len() {
                let mut bad = ans.clone();
                bad[i] ^= 0x5a;
                let _ = decode_ans(&bad, raw);
            }
        }
    }

    #[test]
    fn decode_rejects_bad_sub_tags() {
        let values: Vec<u64> = (0..400u64).map(|i| i * 3).collect();
        let raw = raw_section_len(11, 400);
        let enc = encode_delta(&values, 11, 4).unwrap();
        // ways outside 2..=4 (0x80, 0x81, 0x85, 0xff) must be rejected.
        for tag in [0x80u8, 0x81, 0x85, 0xff] {
            let mut bad = enc.clone();
            bad[0] = tag;
            assert!(decode_delta(&bad, raw).is_err(), "sub-tag {tag:#04x} accepted");
        }
        // Claiming fewer states than the encoder wrote leaves trailing
        // stream bytes (and wrong states) — must not round-trip.
        let mut fewer = enc.clone();
        fewer[0] = 0x82;
        assert!(decode_delta(&fewer, raw).is_err());
    }

    #[test]
    fn truncated_streams_do_not_reserve_declared_capacity() {
        // A section whose header declares many values but whose stream is
        // cut before the state prefix must fail before the output
        // allocation. Observable cheaply: the scratch vector's capacity
        // stays untouched.
        let values: Vec<u64> = (0..50_000u64).map(|i| i * 3).collect();
        let raw = raw_section_len(17, values.len() as u64);
        let enc = encode_delta(&values, 17, 4).unwrap();
        // Cut inside the class table, well past the `len` field.
        let cut = &enc[..24];
        let mut scratch: Vec<u64> = Vec::new();
        assert!(decode_section_into(Codec::Delta, cut, raw, None, &mut scratch).is_err());
        assert_eq!(scratch.capacity(), 0, "truncated header must not allocate output");
    }

    #[test]
    fn freq_normalization_is_exact_and_minimum_one() {
        for counts in [
            vec![1u64],
            vec![1, 1],
            vec![1_000_000, 1],
            vec![1; 4096],
            (1..=100u64).collect::<Vec<_>>(),
        ] {
            let freqs = normalize_freqs(&counts);
            assert_eq!(freqs.iter().map(|&f| f as u32).sum::<u32>(), SCALE);
            assert!(freqs.iter().all(|&f| f >= 1));
        }
    }

    proptest! {
        #[test]
        fn prop_delta_roundtrips(values in prop::collection::vec(any::<u64>(), 0..300)) {
            let max = values.iter().copied().max().unwrap_or(0);
            roundtrip_delta(&values, bits_for(max));
        }

        #[test]
        fn prop_delta_roundtrips_small_widths(
            raw in prop::collection::vec(0u64..64, 0..300),
            width in 6u8..=12,
        ) {
            roundtrip_delta(&raw, width);
        }

        #[test]
        fn prop_ans_roundtrips(values in prop::collection::vec(0u64..4096, 1..300)) {
            let max = values.iter().copied().max().unwrap_or(0);
            prop_assert!(roundtrip_ans(&values, bits_for(max).max(1)));
        }

        #[test]
        fn prop_interleaved_equals_single_state(
            values in prop::collection::vec(0u64..4096, 2..300),
            ways in 2usize..=4,
        ) {
            // Same decoded values from every stream layout, through both
            // the BitPacked and the scratch path, for both codecs.
            let width = bits_for(values.iter().copied().max().unwrap_or(0)).max(1);
            let raw = raw_section_len(width, values.len() as u64);
            for codec in [Codec::Delta, Codec::Ans] {
                let single = encode_section(&values, width, codec, 1).unwrap();
                let multi = encode_section(&values, width, codec, ways).unwrap();
                let a = decode_array(codec, &single, raw).unwrap();
                let b = decode_array(codec, &multi, raw).unwrap();
                prop_assert_eq!(&a, &b);
                let mut scratch = Vec::new();
                decode_section_into(codec, &multi, raw, Some(values.len() as u64), &mut scratch)
                    .unwrap();
                prop_assert_eq!(&scratch, &values);
            }
        }

        #[test]
        fn prop_raw_section_roundtrips_through_scratch(
            values in prop::collection::vec(any::<u64>(), 0..300),
        ) {
            let p = packed(&values);
            let enc = encode_section(&values, p.width(), Codec::Raw, 1).unwrap();
            let raw = raw_section_len(p.width(), values.len() as u64);
            let mut scratch = Vec::new();
            let w = decode_section_into(Codec::Raw, &enc, raw, Some(values.len() as u64),
                &mut scratch).unwrap();
            prop_assert_eq!(w, p.width());
            prop_assert_eq!(&scratch, &values);
        }

        #[test]
        fn prop_selection_roundtrips_through_chosen_codec(
            values in prop::collection::vec(0u64..5000, 0..400),
        ) {
            let p = packed(&values);
            let (codec, bytes) = encode_array(&p);
            let raw = raw_section_len(p.width(), p.len() as u64);
            prop_assert!(bytes.len() as u64 <= raw);
            match codec {
                Codec::Raw => prop_assert_eq!(&bytes, &raw_section(&p)),
                _ => {
                    let dec = decode_array(codec, &bytes, raw).unwrap();
                    prop_assert_eq!(dec, p);
                }
            }
        }

        #[test]
        fn prop_decode_never_panics_on_garbage(
            bytes in prop::collection::vec(any::<u8>(), 0..200),
            raw in 0u64..100_000,
            lead in 0x7fu8..=0x87,
        ) {
            // With (0x80..=0x87) and without a crafted interleave sub-tag
            // up front.
            let mut buf = bytes;
            if lead >= 0x80 {
                buf.insert(0, lead);
            }
            let mut scratch = Vec::new();
            let _ = decode_delta(&buf, raw);
            let _ = decode_ans(&buf, raw);
            let _ = decode_section_into(Codec::Raw, &buf, raw, None, &mut scratch);
            let _ = decode_section_into(Codec::Delta, &buf, raw, Some(42), &mut scratch);
            let _ = decode_section_into(Codec::Ans, &buf, raw, Some(42), &mut scratch);
        }
    }
}
