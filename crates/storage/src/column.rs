//! Per-chunk compressed column segments.

use crate::bitpack::BitPacked;
use crate::dict::ChunkDict;

/// One compressed column segment inside a chunk (the user column is stored
/// separately as [`crate::UserRle`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkColumn {
    /// A dictionary-encoded string column: chunk dictionary + bit-packed
    /// chunk ids, one per row.
    Str {
        /// Sorted global ids present in this chunk.
        dict: ChunkDict,
        /// Per-row chunk ids.
        codes: BitPacked,
    },
    /// A delta-encoded integer column: chunk `[min, max]` range + bit-packed
    /// deltas from `min`, one per row.
    Int {
        /// Minimum value in the chunk.
        min: i64,
        /// Maximum value in the chunk.
        max: i64,
        /// Per-row `value - min` deltas.
        deltas: BitPacked,
    },
}

impl ChunkColumn {
    /// Build a string segment from per-row global ids.
    pub fn from_gids(gids: &[u32]) -> Self {
        let dict = ChunkDict::build(gids.to_vec());
        let codes: Vec<u64> =
            gids.iter().map(|g| dict.find(*g).expect("gid present in chunk dict") as u64).collect();
        ChunkColumn::Str { dict, codes: BitPacked::from_slice(&codes) }
    }

    /// Build an integer segment from per-row values.
    pub fn from_ints(values: &[i64]) -> Self {
        let min = values.iter().copied().min().unwrap_or(0);
        let max = values.iter().copied().max().unwrap_or(0);
        let deltas: Vec<u64> = values.iter().map(|v| (v - min) as u64).collect();
        ChunkColumn::Int { min, max, deltas: BitPacked::from_slice(&deltas) }
    }

    /// Number of rows in the segment.
    pub fn len(&self) -> usize {
        match self {
            ChunkColumn::Str { codes, .. } => codes.len(),
            ChunkColumn::Int { deltas, .. } => deltas.len(),
        }
    }

    /// Whether the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw code at a row: the chunk id for strings, the delta for integers.
    /// Random access without decompression.
    #[inline]
    pub fn code(&self, row: usize) -> u64 {
        match self {
            ChunkColumn::Str { codes, .. } => codes.get(row),
            ChunkColumn::Int { deltas, .. } => deltas.get(row),
        }
    }

    /// Decode the integer value at a row (integer segments only).
    #[inline]
    pub fn int_value(&self, row: usize) -> i64 {
        match self {
            ChunkColumn::Int { min, deltas, .. } => min + deltas.get(row) as i64,
            ChunkColumn::Str { .. } => panic!("int_value on string segment"),
        }
    }

    /// The global id of the string value at a row (string segments only).
    #[inline]
    pub fn gid_at(&self, row: usize) -> u32 {
        match self {
            ChunkColumn::Str { dict, codes } => dict.global_id(codes.get(row) as u32),
            ChunkColumn::Int { .. } => panic!("gid_at on integer segment"),
        }
    }

    /// The packed per-row code words: chunk ids for string segments, deltas
    /// for integer segments — the array [`ChunkColumn::code`] reads one
    /// element of, exposed whole for cursor construction and block decode.
    #[inline]
    pub fn packed(&self) -> &BitPacked {
        match self {
            ChunkColumn::Str { codes, .. } => codes,
            ChunkColumn::Int { deltas, .. } => deltas,
        }
    }

    /// The chunk dictionary, if a string segment.
    pub fn dict(&self) -> Option<&ChunkDict> {
        match self {
            ChunkColumn::Str { dict, .. } => Some(dict),
            ChunkColumn::Int { .. } => None,
        }
    }

    /// The chunk `[min, max]` range, if an integer segment.
    pub fn int_range(&self) -> Option<(i64, i64)> {
        match self {
            ChunkColumn::Int { min, max, .. } => Some((*min, *max)),
            ChunkColumn::Str { .. } => None,
        }
    }

    /// Re-base a string segment's chunk dictionary onto a merged global
    /// dictionary: each stored global id is replaced by `remap[gid]` (the
    /// decode path for chunks written under an older dictionary epoch). The
    /// per-row codes are untouched — a strictly increasing remap preserves
    /// both the sortedness of the chunk dictionary and every value's
    /// position in it.
    pub(crate) fn remap_gids(&self, remap: &[u32]) -> crate::Result<ChunkColumn> {
        match self {
            ChunkColumn::Str { dict, codes } => {
                let mapped: crate::Result<Vec<u32>> = dict
                    .global_ids()
                    .iter()
                    .map(|&g| {
                        remap.get(g as usize).copied().ok_or_else(|| {
                            crate::StorageError::Corrupt(format!(
                                "chunk dict gid {g} outside its dictionary epoch (size {})",
                                remap.len()
                            ))
                        })
                    })
                    .collect();
                Ok(ChunkColumn::Str {
                    dict: ChunkDict::from_sorted(mapped?)?,
                    codes: codes.clone(),
                })
            }
            ChunkColumn::Int { .. } => Err(crate::StorageError::Corrupt(
                "dictionary remap addressed to an integer segment".into(),
            )),
        }
    }

    /// Compressed payload size in bytes (dictionary + codes).
    pub fn packed_bytes(&self) -> usize {
        match self {
            ChunkColumn::Str { dict, codes } => dict.heap_bytes() + codes.packed_bytes(),
            ChunkColumn::Int { deltas, .. } => 16 + deltas.packed_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn str_segment_roundtrip() {
        let gids = [10u32, 3, 10, 99, 3];
        let col = ChunkColumn::from_gids(&gids);
        assert_eq!(col.len(), 5);
        for (i, g) in gids.iter().enumerate() {
            assert_eq!(col.gid_at(i), *g);
        }
        let dict = col.dict().unwrap();
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.find(10), Some(1));
        assert_eq!(dict.find(4), None);
    }

    #[test]
    fn int_segment_roundtrip_with_negatives() {
        let vals = [-5i64, 100, 0, -5, 37];
        let col = ChunkColumn::from_ints(&vals);
        assert_eq!(col.int_range(), Some((-5, 100)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(col.int_value(i), *v);
        }
    }

    #[test]
    fn constant_int_column_packs_to_zero_bits() {
        let col = ChunkColumn::from_ints(&[7, 7, 7]);
        assert_eq!(col.int_range(), Some((7, 7)));
        match &col {
            ChunkColumn::Int { deltas, .. } => assert_eq!(deltas.width(), 0),
            _ => unreachable!(),
        }
        assert_eq!(col.int_value(2), 7);
    }

    proptest! {
        #[test]
        fn prop_int_roundtrip(vals in proptest::collection::vec(-1_000_000i64..1_000_000, 1..300)) {
            let col = ChunkColumn::from_ints(&vals);
            for (i, v) in vals.iter().enumerate() {
                prop_assert_eq!(col.int_value(i), *v);
            }
            let (min, max) = col.int_range().unwrap();
            prop_assert_eq!(min, *vals.iter().min().unwrap());
            prop_assert_eq!(max, *vals.iter().max().unwrap());
        }

        #[test]
        fn prop_str_roundtrip(gids in proptest::collection::vec(0u32..40, 1..300)) {
            let col = ChunkColumn::from_gids(&gids);
            for (i, g) in gids.iter().enumerate() {
                prop_assert_eq!(col.gid_at(i), *g);
            }
        }
    }
}
