//! Typed per-chunk column cursors: the flat, branch-light view the
//! vectorized executor reads through.
//!
//! [`ChunkCursors`] resolves every materialized segment of a chunk **once**
//! into three parallel arrays — the packed code words, the chunk-code→gid
//! LUT (string segments), and the chunk minimum (integer segments) — so a
//! scan's inner loop indexes a slice instead of re-matching the
//! [`ChunkColumn`] enum and re-unwrapping the `Option` per tuple. The
//! cursors borrow the chunk; they are built per chunk at scan open and cost
//! three small `Vec`s.
//!
//! Cursors always read [`BitPacked`] words: the v4 entropy codecs (delta,
//! rANS — interleaved or single-state) are decoded back to `BitPacked` at
//! chunk materialization, and the segment LRU caches that decoded form, so
//! the per-tuple path never touches a compressed stream. The
//! decode-into-scratch variant (`decode_column_values_into`) is for one-shot
//! consumers like `persist::inspect`; cached segments keep the packed form
//! because it is what `unpack_range` and the SIMD lanes read directly.

use crate::bitpack::BitPacked;
use crate::chunk::Chunk;
use crate::column::ChunkColumn;

/// Per-attribute cursors over one chunk's materialized segments, indexed by
/// schema attribute position (like [`Chunk::column`]).
#[derive(Debug)]
pub struct ChunkCursors<'a> {
    /// The packed per-row words of each segment: chunk codes for string
    /// segments, deltas for integer segments; `None` where the chunk holds
    /// no segment (the user column, unprojected columns).
    packs: Vec<Option<&'a BitPacked>>,
    /// Chunk-code → global-id LUT of string segments (empty otherwise).
    luts: Vec<&'a [u32]>,
    /// Chunk minimum of integer segments (0 otherwise).
    mins: Vec<i64>,
}

impl<'a> ChunkCursors<'a> {
    /// Resolve every materialized column of `chunk` into typed cursors.
    pub fn new(chunk: &'a Chunk) -> ChunkCursors<'a> {
        let n = chunk.columns().len();
        let mut packs = Vec::with_capacity(n);
        let mut luts = Vec::with_capacity(n);
        let mut mins = Vec::with_capacity(n);
        for col in chunk.columns() {
            match col.as_deref() {
                Some(ChunkColumn::Str { dict, codes }) => {
                    packs.push(Some(codes));
                    luts.push(dict.global_ids());
                    mins.push(0);
                }
                Some(ChunkColumn::Int { min, deltas, .. }) => {
                    packs.push(Some(deltas));
                    luts.push(&[][..]);
                    mins.push(*min);
                }
                None => {
                    packs.push(None);
                    luts.push(&[][..]);
                    mins.push(0);
                }
            }
        }
        ChunkCursors { packs, luts, mins }
    }

    /// Whether attribute `idx` has a materialized segment.
    #[inline]
    pub fn has(&self, idx: usize) -> bool {
        self.packs.get(idx).is_some_and(Option::is_some)
    }

    /// The packed words of attribute `idx`. Panics on an unmaterialized
    /// column — the executor projects every attribute it touches, so a miss
    /// here is a planner bug (same contract as [`Chunk::column_required`]).
    #[inline]
    pub fn pack(&self, idx: usize) -> &'a BitPacked {
        self.packs[idx].expect("attribute has a materialized column segment")
    }

    /// Raw code at a row: the chunk id for strings, the delta for integers.
    #[inline]
    pub fn code(&self, idx: usize, row: usize) -> u64 {
        self.pack(idx).get(row)
    }

    /// Global id at a row (string segments).
    #[inline]
    pub fn gid(&self, idx: usize, row: usize) -> u32 {
        self.luts[idx][self.pack(idx).get(row) as usize]
    }

    /// Decoded integer value at a row (integer segments).
    #[inline]
    pub fn int(&self, idx: usize, row: usize) -> i64 {
        self.mins[idx] + self.pack(idx).get(row) as i64
    }

    /// Block-decode raw codes of rows `start..end` into `out` (length
    /// `end - start`) through [`BitPacked::unpack_range`] — the SIMD lane
    /// path when compiled in. Integer callers add [`ChunkCursors::int_min`]
    /// themselves; this keeps one decode primitive for both segment kinds.
    #[inline]
    pub fn unpack(&self, idx: usize, start: usize, end: usize, out: &mut [u64]) {
        self.pack(idx).unpack_range(start, end, out);
    }

    /// Chunk minimum of an integer segment.
    #[inline]
    pub fn int_min(&self, idx: usize) -> i64 {
        self.mins[idx]
    }

    /// The chunk-code → gid LUT of a string segment.
    #[inline]
    pub fn lut(&self, idx: usize) -> &'a [u32] {
        self.luts[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rle::UserRle;
    use std::sync::Arc;

    fn chunk() -> Chunk {
        Chunk::new(
            UserRle::from_rows(&[1, 1, 2]),
            vec![
                None,
                Some(ChunkColumn::from_ints(&[-5, 10, 3])),
                Some(ChunkColumn::from_gids(&[7, 2, 7])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn cursors_mirror_column_accessors() {
        let c = chunk();
        let cur = ChunkCursors::new(&c);
        assert!(!cur.has(0));
        assert!(cur.has(1) && cur.has(2));
        for row in 0..3 {
            assert_eq!(cur.int(1, row), c.column_required(1).int_value(row));
            assert_eq!(cur.gid(2, row), c.column_required(2).gid_at(row));
            assert_eq!(cur.code(2, row), c.column_required(2).code(row));
        }
        assert_eq!(cur.int_min(1), -5);
        assert_eq!(cur.lut(2), &[2, 7]);
    }

    #[test]
    fn partial_chunks_expose_missing_columns() {
        let partial = Chunk::from_shared(
            Arc::new(UserRle::from_rows(&[1, 1, 2])),
            vec![None, None, Some(Arc::new(ChunkColumn::from_gids(&[0, 1, 0])))],
        )
        .unwrap();
        let cur = ChunkCursors::new(&partial);
        assert!(!cur.has(1));
        assert_eq!(cur.gid(2, 1), 1);
    }
}
