//! Two-level dictionary encoding for string columns (§4.1).
//!
//! Level 1: a **global dictionary** per column — the sorted unique values of
//! the column across the whole table; each value's *global id* is its
//! position. Level 2: each chunk keeps a **chunk dictionary** — the sorted
//! global ids present in that chunk; each stored code is a *chunk id*, the
//! position of the value's global id in the chunk dictionary.
//!
//! Because both levels are sorted, lookups are binary searches, and a failed
//! chunk-dictionary lookup proves the value does not occur in the chunk —
//! the basis of the executor's chunk-pruning step.

use std::sync::Arc;

/// Global dictionary: sorted unique strings of a column.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GlobalDict {
    values: Vec<Arc<str>>,
}

impl GlobalDict {
    /// Build from any iterator of values; sorts and dedups.
    pub fn build<'a>(values: impl IntoIterator<Item = &'a str>) -> Self {
        let mut v: Vec<&str> = values.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        GlobalDict { values: v.into_iter().map(Arc::from).collect() }
    }

    /// Rebuild from already-sorted unique values (persistence path).
    /// Returns an error if the input is not strictly sorted.
    pub fn from_sorted(values: Vec<Arc<str>>) -> crate::Result<Self> {
        for i in 1..values.len() {
            if values[i - 1].as_ref() >= values[i].as_ref() {
                return Err(crate::StorageError::Corrupt(
                    "global dictionary not strictly sorted".into(),
                ));
            }
        }
        Ok(GlobalDict { values })
    }

    /// Binary-search a value; returns its global id if present.
    pub fn lookup(&self, value: &str) -> Option<u32> {
        self.values.binary_search_by(|v| v.as_ref().cmp(value)).ok().map(|i| i as u32)
    }

    /// The value for a global id.
    #[inline]
    pub fn value(&self, gid: u32) -> &Arc<str> {
        &self.values[gid as usize]
    }

    /// The insertion point of a value: the number of dictionary entries
    /// strictly less than it. Because global ids are assigned in sorted
    /// order, `gid < rank(v)` ⟺ `dict[gid] < v`, which lets ordering
    /// predicates on strings be evaluated directly on dictionary codes even
    /// when the literal itself is absent from the dictionary.
    pub fn rank(&self, value: &str) -> u32 {
        match self.values.binary_search_by(|v| v.as_ref().cmp(value)) {
            Ok(i) | Err(i) => i as u32,
        }
    }

    /// Merge new values into the dictionary, keeping it sorted: returns the
    /// merged dictionary plus the **remap** of this dictionary's global ids
    /// into the merged one (`remap[old_gid] == merged gid of the same
    /// value`). Because both dictionaries are sorted by value, the remap is
    /// strictly increasing — which is what lets already-encoded chunk
    /// dictionaries be re-based onto the merged dictionary without
    /// re-sorting, and keeps the `rank`-based ordering-predicate compilation
    /// valid after an append introduces values that sort into the middle.
    pub fn merge_with<'a>(
        &self,
        new_values: impl IntoIterator<Item = &'a str>,
    ) -> (Self, Vec<u32>) {
        let mut incoming: Vec<&str> = new_values.into_iter().collect();
        incoming.sort_unstable();
        incoming.dedup();

        let mut merged: Vec<Arc<str>> = Vec::with_capacity(self.values.len() + incoming.len());
        let mut remap = Vec::with_capacity(self.values.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.values.len() || j < incoming.len() {
            let take_old = match (self.values.get(i), incoming.get(j)) {
                (Some(old), Some(new)) => old.as_ref() <= *new,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_old {
                if incoming.get(j).is_some_and(|n| *n == self.values[i].as_ref()) {
                    j += 1; // value present on both sides: one merged entry
                }
                remap.push(merged.len() as u32);
                merged.push(self.values[i].clone());
                i += 1;
            } else {
                merged.push(Arc::from(incoming[j]));
                j += 1;
            }
        }
        (GlobalDict { values: merged }, remap)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in sorted order.
    pub fn values(&self) -> &[Arc<str>] {
        &self.values
    }

    /// Approximate heap bytes (for storage statistics).
    pub fn heap_bytes(&self) -> usize {
        self.values.iter().map(|v| v.len() + 8).sum::<usize>() + self.values.len() * 16
    }
}

/// Chunk dictionary: the sorted global ids present in one chunk.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChunkDict {
    global_ids: Vec<u32>,
}

impl ChunkDict {
    /// Build from the (possibly unsorted, duplicated) global ids of a chunk
    /// column segment.
    pub fn build(mut gids: Vec<u32>) -> Self {
        gids.sort_unstable();
        gids.dedup();
        ChunkDict { global_ids: gids }
    }

    /// Rebuild from already-sorted unique ids (persistence path).
    pub fn from_sorted(global_ids: Vec<u32>) -> crate::Result<Self> {
        for i in 1..global_ids.len() {
            if global_ids[i - 1] >= global_ids[i] {
                return Err(crate::StorageError::Corrupt(
                    "chunk dictionary not strictly sorted".into(),
                ));
            }
        }
        Ok(ChunkDict { global_ids })
    }

    /// Binary-search a global id; returns the chunk id if the value occurs
    /// in this chunk. `None` proves absence (chunk pruning).
    #[inline]
    pub fn find(&self, gid: u32) -> Option<u32> {
        self.global_ids.binary_search(&gid).ok().map(|i| i as u32)
    }

    /// The global id for a chunk id.
    #[inline]
    pub fn global_id(&self, chunk_id: u32) -> u32 {
        self.global_ids[chunk_id as usize]
    }

    /// Number of distinct values in the chunk.
    pub fn len(&self) -> usize {
        self.global_ids.len()
    }

    /// Whether the chunk dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.global_ids.is_empty()
    }

    /// Sorted global ids (for persistence).
    pub fn global_ids(&self) -> &[u32] {
        &self.global_ids
    }

    /// Bytes used by the id list.
    pub fn heap_bytes(&self) -> usize {
        self.global_ids.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn global_dict_sorted_lookup() {
        let d = GlobalDict::build(["shop", "launch", "fight", "shop"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.lookup("fight"), Some(0));
        assert_eq!(d.lookup("launch"), Some(1));
        assert_eq!(d.lookup("shop"), Some(2));
        assert_eq!(d.lookup("quest"), None);
        assert_eq!(d.value(1).as_ref(), "launch");
    }

    #[test]
    fn rank_orders_strings_via_gids() {
        let d = GlobalDict::build(["fight", "launch", "shop"]);
        assert_eq!(d.rank("fight"), 0);
        assert_eq!(d.rank("launch"), 1);
        assert_eq!(d.rank("a"), 0); // before everything
        assert_eq!(d.rank("m"), 2); // between launch and shop
        assert_eq!(d.rank("z"), 3); // after everything
                                    // gid < rank(v)  <=>  dict[gid] < v
        for v in ["a", "fight", "g", "launch", "m", "shop", "z"] {
            for gid in 0..d.len() as u32 {
                assert_eq!(gid < d.rank(v), d.value(gid).as_ref() < v);
            }
        }
    }

    #[test]
    fn chunk_dict_two_level_mapping() {
        // Chunk contains global ids {7, 2, 9, 2}.
        let cd = ChunkDict::build(vec![7, 2, 9, 2]);
        assert_eq!(cd.len(), 3);
        assert_eq!(cd.find(2), Some(0));
        assert_eq!(cd.find(7), Some(1));
        assert_eq!(cd.find(9), Some(2));
        assert_eq!(cd.find(5), None); // absence proof
        assert_eq!(cd.global_id(1), 7);
    }

    #[test]
    fn from_sorted_rejects_disorder() {
        assert!(GlobalDict::from_sorted(vec![Arc::from("b"), Arc::from("a")]).is_err());
        assert!(GlobalDict::from_sorted(vec![Arc::from("a"), Arc::from("a")]).is_err());
        assert!(ChunkDict::from_sorted(vec![3, 1]).is_err());
        assert!(ChunkDict::from_sorted(vec![1, 1]).is_err());
    }

    #[test]
    fn merge_with_keeps_sorted_and_remaps_monotonically() {
        let d = GlobalDict::build(["fight", "launch", "shop"]);
        let (merged, remap) = d.merge_with(["craft", "launch", "quest", "zoom"]);
        let values: Vec<&str> = merged.values().iter().map(|v| v.as_ref()).collect();
        assert_eq!(values, ["craft", "fight", "launch", "quest", "shop", "zoom"]);
        // Every old value keeps its identity under the remap.
        assert_eq!(remap.len(), d.len());
        for (old_gid, new_gid) in remap.iter().enumerate() {
            assert_eq!(merged.value(*new_gid).as_ref(), d.value(old_gid as u32).as_ref());
        }
        // Strictly increasing: re-based chunk dictionaries stay sorted.
        assert!(remap.windows(2).all(|w| w[0] < w[1]));
        // No new values: identity remap.
        let (same, id) = d.merge_with(["shop", "fight"]);
        assert_eq!(same.values(), d.values());
        assert_eq!(id, vec![0, 1, 2]);
        // Merging into an empty dictionary.
        let (fresh, none) = GlobalDict::default().merge_with(["b", "a"]);
        assert_eq!(fresh.len(), 2);
        assert!(none.is_empty());
    }

    #[test]
    fn empty_dicts() {
        let d = GlobalDict::build([]);
        assert!(d.is_empty());
        assert_eq!(d.lookup("x"), None);
        let cd = ChunkDict::build(vec![]);
        assert!(cd.is_empty());
        assert_eq!(cd.find(0), None);
    }

    proptest! {
        #[test]
        fn prop_global_dict_total(values in proptest::collection::vec("[a-z]{1,6}", 0..100)) {
            let d = GlobalDict::build(values.iter().map(|s| s.as_str()));
            for v in &values {
                let gid = d.lookup(v).expect("every inserted value resolvable");
                prop_assert_eq!(d.value(gid).as_ref(), v.as_str());
            }
            // Sorted order of ids mirrors lexicographic order of values.
            for w in d.values().windows(2) {
                prop_assert!(w[0].as_ref() < w[1].as_ref());
            }
        }

        #[test]
        fn prop_chunk_dict_total(gids in proptest::collection::vec(0u32..50, 0..200)) {
            let cd = ChunkDict::build(gids.clone());
            for g in &gids {
                let cid = cd.find(*g).expect("present gid resolvable");
                prop_assert_eq!(cd.global_id(cid), *g);
            }
        }
    }
}
