//! Error type for the storage layer.

use std::fmt;

/// Errors raised while compressing, reading, or persisting activity tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The on-disk data is malformed.
    Corrupt(String),
    /// Unsupported format version in the file header.
    BadVersion(u32),
    /// The file is well-formed but the requested access mode does not
    /// support it (e.g. lazily opening a v1 blob that has no chunk index
    /// footer). The message includes a migration hint.
    Unsupported(String),
    /// Underlying I/O failure.
    Io(String),
    /// Attempted to read a row or column that does not exist.
    OutOfBounds {
        /// What was indexed.
        what: &'static str,
        /// Requested index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
    /// The activity table violated an invariant the format needs.
    Invalid(String),
    /// A single-writer lock could not be acquired within its timeout:
    /// another writer holds the resource (or died holding it — the message
    /// names the lock file to remove after verifying the holder is gone).
    Busy(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StorageError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            StorageError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            StorageError::Io(m) => write!(f, "io error: {m}"),
            StorageError::OutOfBounds { what, index, len } => {
                write!(f, "{what} index {index} out of bounds (len {len})")
            }
            StorageError::Invalid(m) => write!(f, "invalid input: {m}"),
            StorageError::Busy(m) => write!(f, "resource busy: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e.to_string())
    }
}
