//! # cohana-storage
//!
//! COHANA's storage format for activity tables (§4.1 of the paper).
//!
//! An activity table is stored in the sorted order of its primary key
//! `(Au, At, Ae)` and horizontally partitioned into **chunks** such that all
//! tuples of a user land in exactly one chunk. Within a chunk, data is stored
//! column by column:
//!
//! * the **user column** is run-length encoded as `(user, first, count)`
//!   triples, enabling the modified TableScan's `GetNextUser` /
//!   `SkipCurUser`;
//! * **string columns** (action, dimensions) use a *two-level dictionary*:
//!   a global dictionary of sorted unique values assigns *global ids*; each
//!   chunk keeps the sorted list of global ids present (the *chunk
//!   dictionary*) and stores each value as its position in that list (the
//!   *chunk id*). A birth action absent from a chunk dictionary lets the
//!   executor skip the whole chunk;
//! * **integer columns** (time, measures) use *two-level delta encoding*:
//!   a global `[min, max]` range, a per-chunk range, and per-value deltas
//!   from the chunk minimum. Disjoint chunk ranges let the executor skip
//!   chunks for time-range predicates;
//! * the resulting small integers are **bit-packed at fixed width**, chosen
//!   as the minimum number of bits for the largest value, packing as many
//!   values as fit into each 64-bit word **without spanning words**, so any
//!   value can be read randomly without decompression.
//!
//! [`CompressedTable::build`] compresses an
//! [`ActivityTable`](cohana_activity::ActivityTable).
//!
//! ## Persistence and lazy access
//!
//! [`persist`] serializes the compressed form into the **v4
//! column-addressable format**: every chunk's segments (RLE user column +
//! one blob per attribute) are written as independently addressable blobs,
//! then a footer holding the schema, compression options, global column
//! metadata, and one [`ChunkIndexEntry`] per chunk (per-blob byte
//! locations, row/user counts, time bounds, the chunk's action-dictionary
//! membership, and per-column [`ColumnStats`]), terminated by the footer
//! length + magic — the Parquet row-group/column-chunk metadata layout
//! adapted to COHANA's user-clustered chunks. v4 additionally runs each
//! column blob's packed-array section through the smallest of the [`codec`]
//! module's per-blob codecs (raw / delta-then-pack / rANS) and records the
//! choice plus the uncompressed size in the footer. v3 (raw blobs), v2
//! (whole-chunk blobs) and v1 (eager) files stay readable.
//!
//! The [`ChunkSource`] trait splits "metadata for pruning" from "chunk
//! payload": [`CompressedTable`] implements it with everything resident,
//! while [`FileSource`] opens a v2/v3 file in O(footer) and loads + decodes
//! individual segments on demand into a **bounded, byte-budgeted LRU
//! cache** keyed by `(chunk, column)`. With the projection-aware
//! [`ChunkSource::chunk_columns`], a selective query pays I/O and decode
//! cost only for the chunk columns it actually names.
//!
//! ## Incremental ingest
//!
//! v3 files are not build-once: [`persist::append`] grows a file in place
//! (new blobs after the old footer, fresh footer at the tail, dictionary
//! growth handled by per-epoch gid remaps, returning users' chunks
//! rewritten to preserve the one-chunk-per-user invariant),
//! [`persist::compact`] merges appended chunks back into full-sized,
//! time-clustered, dead-byte-free form, [`TableWriter`] buffers and encodes
//! incoming batches, and [`FileSource::refresh`] lets an open source adopt
//! the grown file without serving stale cache entries. See
//! `docs/FORMAT.md`.

pub mod bitpack;
pub mod chunk;
pub mod codec;
pub mod column;
pub mod cursor;
pub mod dict;
pub mod error;
pub mod persist;
pub mod record;
pub mod rle;
pub mod shard;
pub mod source;
pub mod stats;
pub mod table;
pub mod writer;

pub use bitpack::BitPacked;
pub use chunk::Chunk;
pub use codec::Codec;
pub use column::ChunkColumn;
pub use cursor::ChunkCursors;
pub use dict::{ChunkDict, GlobalDict};
pub use error::StorageError;
pub use persist::{
    AppendStats, CodecStats, ColumnCompression, CompactStats, FileSpaceStats, FormatInfo,
};
pub use record::{with_recorder, IoRecorder};
pub use rle::UserRle;
pub use shard::{
    DeleteStats, ShardLock, ShardManifest, ShardedAppendStats, ShardedSource, MANIFEST_FILE,
};
pub use source::{
    ChunkIndexEntry, ChunkRef, ChunkSource, CodecDecode, ColumnStats, FileSource, RefreshStats,
    SourceIoStats, DEFAULT_CACHE_BUDGET,
};
pub use stats::StorageStats;
pub use table::{ColumnMeta, CompressedTable, CompressionOptions, TableMeta};
pub use writer::TableWriter;

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StorageError>;
