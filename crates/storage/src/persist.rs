//! Binary persistence of compressed tables.
//!
//! The format is a single self-describing blob:
//!
//! ```text
//! magic "COHA" | version u32 | options | schema | metas | num_rows u64
//!   | chunk count u32 | chunks…
//! ```
//!
//! All integers are little-endian. Bit-packed arrays are stored as
//! `width u8 | len u64 | words…`, so a file can be mapped and read back with
//! the same random-access guarantees as the in-memory form.

use crate::bitpack::BitPacked;
use crate::chunk::Chunk;
use crate::column::ChunkColumn;
use crate::dict::{ChunkDict, GlobalDict};
use crate::rle::UserRle;
use crate::table::{ColumnMeta, CompressedTable, CompressionOptions};
use crate::{Result, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cohana_activity::{Attribute, AttributeRole, Schema, ValueType};
use std::path::Path;
use std::sync::Arc;

const MAGIC: u32 = 0x434F_4841; // "COHA"
const VERSION: u32 = 1;

/// Serialize a compressed table to bytes.
pub fn to_bytes(table: &CompressedTable) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(table.options().chunk_size as u64);
    write_schema(&mut buf, table.schema());
    for meta in table.metas() {
        write_meta(&mut buf, meta);
    }
    buf.put_u64_le(table.num_rows() as u64);
    buf.put_u32_le(table.chunks().len() as u32);
    for chunk in table.chunks() {
        write_chunk(&mut buf, chunk);
    }
    buf.freeze()
}

/// Deserialize a compressed table from bytes.
pub fn from_bytes(mut buf: &[u8]) -> Result<CompressedTable> {
    let magic = get_u32(&mut buf)?;
    if magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let version = get_u32(&mut buf)?;
    if version != VERSION {
        return Err(StorageError::BadVersion(version));
    }
    let chunk_size = get_u64(&mut buf)? as usize;
    let schema = read_schema(&mut buf)?;
    let mut metas = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        metas.push(read_meta(&mut buf)?);
    }
    let num_rows = get_u64(&mut buf)? as usize;
    let num_chunks = get_u32(&mut buf)? as usize;
    let mut chunks = Vec::with_capacity(num_chunks);
    for _ in 0..num_chunks {
        chunks.push(read_chunk(&mut buf, schema.arity())?);
    }
    if buf.has_remaining() {
        return Err(StorageError::Corrupt(format!("{} trailing bytes", buf.remaining())));
    }
    CompressedTable::from_parts(
        schema,
        metas,
        chunks,
        num_rows,
        CompressionOptions::with_chunk_size(chunk_size.max(1)),
    )
}

/// Write a compressed table to a file.
pub fn write_file(table: &CompressedTable, path: &Path) -> Result<()> {
    std::fs::write(path, to_bytes(table))?;
    Ok(())
}

/// Read a compressed table from a file.
pub fn read_file(path: &Path) -> Result<CompressedTable> {
    let data = std::fs::read(path)?;
    from_bytes(&data)
}

// ---------------------------------------------------------------- helpers

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    Ok(buf.get_u64_le())
}

fn get_i64(buf: &mut &[u8]) -> Result<i64> {
    Ok(get_u64(buf)? as i64)
}

fn write_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn read_str(buf: &mut &[u8]) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(StorageError::Corrupt("string overruns input".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| StorageError::Corrupt("invalid utf-8".into()))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

fn write_schema(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u16_le(schema.arity() as u16);
    for attr in schema.attributes() {
        write_str(buf, &attr.name);
        buf.put_u8(match attr.vtype {
            ValueType::Str => 0,
            ValueType::Int => 1,
        });
        buf.put_u8(match attr.role {
            AttributeRole::User => 0,
            AttributeRole::Time => 1,
            AttributeRole::Action => 2,
            AttributeRole::Dimension => 3,
            AttributeRole::Measure => 4,
        });
    }
}

fn read_schema(buf: &mut &[u8]) -> Result<Schema> {
    if buf.remaining() < 2 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    let arity = buf.get_u16_le() as usize;
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = read_str(buf)?;
        let vtype = match get_u8(buf)? {
            0 => ValueType::Str,
            1 => ValueType::Int,
            t => return Err(StorageError::Corrupt(format!("bad value type {t}"))),
        };
        let role = match get_u8(buf)? {
            0 => AttributeRole::User,
            1 => AttributeRole::Time,
            2 => AttributeRole::Action,
            3 => AttributeRole::Dimension,
            4 => AttributeRole::Measure,
            r => return Err(StorageError::Corrupt(format!("bad role {r}"))),
        };
        attrs.push(Attribute::new(name, vtype, role));
    }
    Schema::new(attrs).map_err(|e| StorageError::Corrupt(e.to_string()))
}

fn write_dict(buf: &mut BytesMut, dict: &GlobalDict) {
    buf.put_u32_le(dict.len() as u32);
    for v in dict.values() {
        write_str(buf, v);
    }
}

fn read_dict(buf: &mut &[u8]) -> Result<GlobalDict> {
    let n = get_u32(buf)? as usize;
    // Each value consumes at least its 4-byte length prefix; a larger count
    // is corruption, and guarding here prevents huge pre-allocations.
    if n > buf.remaining() / 4 {
        return Err(StorageError::Corrupt(format!("dictionary count {n} overruns input")));
    }
    let mut values: Vec<Arc<str>> = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(Arc::from(read_str(buf)?));
    }
    GlobalDict::from_sorted(values)
}

fn write_meta(buf: &mut BytesMut, meta: &ColumnMeta) {
    match meta {
        ColumnMeta::User { dict } => {
            buf.put_u8(0);
            write_dict(buf, dict);
        }
        ColumnMeta::Str { dict } => {
            buf.put_u8(1);
            write_dict(buf, dict);
        }
        ColumnMeta::Int { min, max } => {
            buf.put_u8(2);
            buf.put_u64_le(*min as u64);
            buf.put_u64_le(*max as u64);
        }
    }
}

fn read_meta(buf: &mut &[u8]) -> Result<ColumnMeta> {
    match get_u8(buf)? {
        0 => Ok(ColumnMeta::User { dict: read_dict(buf)? }),
        1 => Ok(ColumnMeta::Str { dict: read_dict(buf)? }),
        2 => {
            let min = get_i64(buf)?;
            let max = get_i64(buf)?;
            Ok(ColumnMeta::Int { min, max })
        }
        t => Err(StorageError::Corrupt(format!("bad meta tag {t}"))),
    }
}

fn write_packed(buf: &mut BytesMut, packed: &BitPacked) {
    buf.put_u8(packed.width());
    buf.put_u64_le(packed.len() as u64);
    for w in packed.words() {
        buf.put_u64_le(*w);
    }
}

fn read_packed(buf: &mut &[u8]) -> Result<BitPacked> {
    let width = get_u8(buf)?;
    if width > 64 {
        return Err(StorageError::Corrupt(format!("bad bit width {width}")));
    }
    let len = get_u64(buf)? as usize;
    // Guard against corrupt lengths before allocating: at `width > 0`, the
    // packed words must actually be present in the input.
    let num_words = if width == 0 {
        0
    } else {
        len.div_ceil((64 / width as usize).max(1))
    };
    if num_words > buf.remaining() / 8 {
        return Err(StorageError::Corrupt("bitpack words overrun input".into()));
    }
    let mut words = Vec::with_capacity(num_words);
    for _ in 0..num_words {
        words.push(buf.get_u64_le());
    }
    BitPacked::from_raw(width, len, words)
}

fn write_chunk(buf: &mut BytesMut, chunk: &Chunk) {
    let (users, firsts, counts) = chunk.user_rle().parts();
    write_packed(buf, users);
    write_packed(buf, firsts);
    write_packed(buf, counts);
    buf.put_u16_le(chunk.columns().len() as u16);
    for col in chunk.columns() {
        match col {
            None => buf.put_u8(0),
            Some(ChunkColumn::Str { dict, codes }) => {
                buf.put_u8(1);
                buf.put_u32_le(dict.len() as u32);
                for gid in dict.global_ids() {
                    buf.put_u32_le(*gid);
                }
                write_packed(buf, codes);
            }
            Some(ChunkColumn::Int { min, max, deltas }) => {
                buf.put_u8(2);
                buf.put_u64_le(*min as u64);
                buf.put_u64_le(*max as u64);
                write_packed(buf, deltas);
            }
        }
    }
}

fn read_chunk(buf: &mut &[u8], arity: usize) -> Result<Chunk> {
    let users = read_packed(buf)?;
    let firsts = read_packed(buf)?;
    let counts = read_packed(buf)?;
    let rle = UserRle::from_parts(users, firsts, counts)?;
    if buf.remaining() < 2 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    let ncols = buf.get_u16_le() as usize;
    if ncols != arity {
        return Err(StorageError::Corrupt(format!("chunk has {ncols} columns, schema {arity}")));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        match get_u8(buf)? {
            0 => columns.push(None),
            1 => {
                let n = get_u32(buf)? as usize;
                if n > buf.remaining() / 4 {
                    return Err(StorageError::Corrupt(format!(
                        "chunk dictionary count {n} overruns input"
                    )));
                }
                let mut gids = Vec::with_capacity(n);
                for _ in 0..n {
                    gids.push(get_u32(buf)?);
                }
                let dict = ChunkDict::from_sorted(gids)?;
                let codes = read_packed(buf)?;
                columns.push(Some(ChunkColumn::Str { dict, codes }));
            }
            2 => {
                let min = get_i64(buf)?;
                let max = get_i64(buf)?;
                let deltas = read_packed(buf)?;
                columns.push(Some(ChunkColumn::Int { min, max, deltas }));
            }
            t => return Err(StorageError::Corrupt(format!("bad column tag {t}"))),
        }
    }
    Chunk::new(rle, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig};

    fn compressed() -> CompressedTable {
        let t = generate(&GeneratorConfig::small());
        CompressedTable::build(&t, CompressionOptions::with_chunk_size(256)).unwrap()
    }

    #[test]
    fn roundtrip_bytes() {
        let c = compressed();
        let bytes = to_bytes(&c);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.num_rows(), c.num_rows());
        assert_eq!(back.chunks(), c.chunks());
        assert_eq!(back.schema(), c.schema());
        // Full decode equality.
        assert_eq!(back.decompress().unwrap().rows(), c.decompress().unwrap().rows());
    }

    #[test]
    fn roundtrip_file() {
        let c = compressed();
        let dir = std::env::temp_dir().join("cohana-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.cohana");
        write_file(&c, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.num_rows(), c.num_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = to_bytes(&compressed()).to_vec();
        bytes[0] ^= 0xFF;
        assert!(matches!(from_bytes(&bytes).unwrap_err(), StorageError::Corrupt(_)));
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&compressed()).to_vec();
        bytes[4] = 99;
        assert!(matches!(from_bytes(&bytes).unwrap_err(), StorageError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = to_bytes(&compressed()).to_vec();
        // Truncating at any prefix must error, never panic.
        for cut in (0..bytes.len().min(400)).chain([bytes.len() - 1]) {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = to_bytes(&compressed()).to_vec();
        bytes.push(0);
        assert!(matches!(from_bytes(&bytes).unwrap_err(), StorageError::Corrupt(_)));
    }
}
