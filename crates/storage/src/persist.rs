//! Binary persistence of compressed tables.
//!
//! # v4: the codec-compressed column-addressable format
//!
//! Every chunk's segments are written as **independently addressable
//! blobs** — the RLE user column first, then one blob per remaining
//! attribute — followed by a footer that records, per chunk, the byte
//! location of every blob plus per-column statistics, and finally the
//! footer length + magic (the Parquet `RowGroupMetaData` /
//! `ColumnChunkMetaData` layout, adapted to COHANA's user-clustered
//! chunks). New in v4, each column blob's packed-array section is run
//! through the smallest of the [`crate::codec`] codecs (raw /
//! delta-then-pack / rANS) at write time, and the footer's blob record
//! grows a codec tag plus the blob's uncompressed (v3-serialized) size:
//!
//! ```text
//! ┌────────────────────────────────────────────────────────────────────┐
//! │ magic "COHA" u32 │ version=4 u32                                   │  header
//! ├────────────────────────────────────────────────────────────────────┤
//! │ chunk 0: rle blob │ col 1 blob │ col 2 blob │ …                    │  payload
//! │ chunk 1: rle blob │ col 1 blob │ …                                 │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ chunk_size u64                                                     │  footer
//! │ schema (arity u16, then name │ vtype u8 │ role u8 per attribute)   │
//! │ one ColumnMeta per attribute (dictionaries / ranges)               │
//! │ num_rows u64 │ chunk_count u32                                     │
//! │ per chunk: rle offset u64 │ len u64 │ codec u8 │ uncompressed u64  │
//! │            per attribute: offset u64 │ len u64 │ codec u8 │        │
//! │                           uncompressed u64  (all-zero for user)    │
//! │            rows u64 │ users u64 │ time_min i64 │ time_max i64      │
//! │            n_actions u32 │ gids…                                   │
//! │            per attribute: stats (user u8=0 │ str u8=1 + distinct   │
//! │                                  u32 │ int u8=2 + min i64 + max)   │
//! ├────────────────────────────────────────────────────────────────────┤
//! │ footer_len u64 │ magic "COHA" u32                                  │  tail
//! └────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers are little-endian. Each blob is self-contained given its
//! footer record, so any single column of any chunk can be fetched and
//! decoded from its `(offset, len, codec, uncompressed)` alone — the
//! property projection pushdown builds on:
//! [`FileSource`](crate::source::FileSource) opens in O(footer), prunes
//! chunks from index entries, and then reads **only the bytes of the
//! columns the plan projects**. A `Raw` blob is byte-identical to its v3
//! form (the RLE blob always is); `Delta`/`Ans` blobs keep their header
//! (tag byte, chunk dictionary gids, int min/max) raw and entropy-code
//! only the packed array, decoding back into the exact
//! [`BitPacked`] the raw path would produce — cursors, the SIMD
//! `unpack_range`, and the morsel executor never see the difference.
//!
//! # Appending
//!
//! v3/v4 files grow in place: [`append`] writes a batch's chunks after the
//! old end of file and re-serializes the footer at the new tail, leaving
//! every previously written byte untouched (old footers and superseded
//! chunk versions become dead bytes until [`compact`] reclaims them). The
//! file's version is preserved: appending to a v4 file codec-compresses the
//! new blobs, appending to a v3 file keeps writing raw v3 blobs (its footer
//! has no codec fields), and [`compact`] — which rewrites the whole file in
//! the current format — is the migration path from v3 to v4. Dictionary
//! growth is recorded as per-epoch gid remaps in the footer instead of
//! rewriting blobs; chunks holding users that reappear in a batch are
//! re-encoded so no user ever spans two chunks. See `docs/FORMAT.md` for
//! the exact layout and `crate::writer::TableWriter` for the batching
//! front end.
//!
//! # v3, v2 and v1 compatibility
//!
//! v3 files (raw column-addressable blobs, the pre-codec format) read
//! identically through every path — eager, lazy, append, compact — and
//! [`to_bytes_v3`] keeps the writer byte-for-byte. v2 files (whole-chunk
//! blobs, footer-indexed; the PR-1 format) are supported eagerly via
//! [`from_bytes`]/[`read_file`] and lazily via `FileSource`, which degrades
//! to whole-chunk fetches since a v2 chunk is one blob. [`to_bytes_v2`]
//! keeps the writer around. v1 files (a single eager header-first blob, no
//! footer) are read by [`from_bytes`]; [`to_bytes_v1`] keeps that writer
//! for round-trip tests and downgrades. Lazy opening requires v2+ —
//! re-save a v1 file to migrate.

use crate::bitpack::BitPacked;
use crate::chunk::Chunk;
use crate::codec::{self, Codec};
use crate::column::ChunkColumn;
use crate::dict::{ChunkDict, GlobalDict};
use crate::rle::UserRle;
use crate::source::{ChunkIndexEntry, ColumnStats};
use crate::table::{ColumnMeta, CompressedTable, CompressionOptions, TableMeta};
use crate::{Result, StorageError};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cohana_activity::{ActivityTable, Attribute, AttributeRole, Schema, TableBuilder, ValueType};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

const MAGIC: u32 = 0x434F_4841; // "COHA"
/// Current on-disk format version (column-addressable, per-blob codecs).
pub const VERSION: u32 = 4;
/// Bytes before the first blob: magic + version.
const HEADER_LEN: u64 = 8;
/// Bytes after the footer: footer_len u64 + magic u32.
const TAIL_LEN: u64 = 12;

/// Serialize a compressed table into the current (v4, column-addressable
/// with per-blob codecs) format.
pub fn to_bytes(table: &CompressedTable) -> Bytes {
    to_bytes_versioned(table, VERSION)
}

/// Serialize in the v3 column-addressable format (raw blobs, 16-byte footer
/// blob records) — byte-identical to what the pre-v4 writer produced. Kept
/// for round-trip tests, downgrades, and producing files readable by
/// v3-only consumers.
pub fn to_bytes_v3(table: &CompressedTable) -> Bytes {
    to_bytes_versioned(table, 3)
}

fn to_bytes_versioned(table: &CompressedTable, version: u32) -> Bytes {
    debug_assert!(version == 3 || version == 4);
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(version);
    let layouts = write_blobs(&mut buf, table.chunks(), table.schema(), 0, version);
    let footer_start = buf.len() as u64;
    write_footer(
        &mut buf,
        version,
        table.options().chunk_size,
        table.schema(),
        table.metas(),
        table.num_rows() as u64,
        &layouts,
        table.index_entries(),
        &[],
        &[],
    );
    let footer_len = buf.len() as u64 - footer_start;
    buf.put_u64_le(footer_len);
    buf.put_u32_le(MAGIC);
    buf.freeze()
}

/// Write every chunk's blobs back-to-back into `buf`, returning their
/// layouts with offsets shifted by `base` (the file offset `buf[0]` will
/// land at — 0 when writing a whole image, the old file size when writing an
/// appended region). At `version >= 4` every column blob goes through codec
/// selection; the RLE blob is always raw (its three packed arrays carry the
/// scan-critical user runs, decoded for every touched chunk).
fn write_blobs(
    buf: &mut BytesMut,
    chunks: &[Chunk],
    schema: &Schema,
    base: u64,
    version: u32,
) -> Vec<ChunkLayout> {
    let arity = schema.arity();
    let user_idx = schema.user_idx();
    let mut layouts = Vec::with_capacity(chunks.len());
    for chunk in chunks {
        let rle_offset = base + buf.len() as u64;
        write_rle_blob(buf, chunk.user_rle());
        let rle = BlobLoc::raw(rle_offset, base + buf.len() as u64 - rle_offset);
        let mut cols = vec![BlobLoc::absent(); arity];
        for (idx, slot) in cols.iter_mut().enumerate() {
            if idx == user_idx {
                continue;
            }
            let offset = base + buf.len() as u64;
            let col = chunk.column_required(idx);
            *slot = if version >= 4 {
                let (codec, uncompressed) = write_column_blob_v4(buf, col);
                BlobLoc { offset, len: base + buf.len() as u64 - offset, codec, uncompressed }
            } else {
                write_column_blob(buf, col);
                BlobLoc::raw(offset, base + buf.len() as u64 - offset)
            };
        }
        layouts.push(ChunkLayout { rle, cols });
    }
    layouts
}

/// Write a v3/v4 footer (everything between the last blob and the tail):
/// options + schema + global column metadata, the per-chunk index, and — for
/// appended files — the dictionary-epoch extension. `epochs` and
/// `chunk_epochs` must be empty or sized together (`chunk_epochs.len() ==
/// layouts.len()`). v4 blob records additionally carry the codec tag and
/// uncompressed size.
#[allow(clippy::too_many_arguments)]
fn write_footer(
    buf: &mut BytesMut,
    version: u32,
    chunk_size: usize,
    schema: &Schema,
    metas: &[ColumnMeta],
    num_rows: u64,
    layouts: &[ChunkLayout],
    entries: &[ChunkIndexEntry],
    epochs: &[EpochRemaps],
    chunk_epochs: &[u32],
) {
    let arity = schema.arity();
    let write_loc = |buf: &mut BytesMut, loc: &BlobLoc| {
        buf.put_u64_le(loc.offset);
        buf.put_u64_le(loc.len);
        if version >= 4 {
            buf.put_u8(loc.codec.tag());
            buf.put_u64_le(loc.uncompressed);
        }
    };
    buf.put_u64_le(chunk_size as u64);
    write_schema(buf, schema);
    for meta in metas {
        write_meta(buf, meta);
    }
    buf.put_u64_le(num_rows);
    buf.put_u32_le(layouts.len() as u32);
    for (layout, entry) in layouts.iter().zip(entries) {
        write_loc(buf, &layout.rle);
        for loc in &layout.cols {
            write_loc(buf, loc);
        }
        write_entry_base(buf, entry);
        debug_assert_eq!(entry.column_stats.len(), arity);
        for stats in &entry.column_stats {
            write_column_stats(buf, stats);
        }
    }
    // The epoch extension is omitted entirely when every chunk is current,
    // keeping never-appended images byte-identical to the original v3
    // layout.
    if !epochs.is_empty() {
        debug_assert_eq!(chunk_epochs.len(), layouts.len());
        buf.put_u32_le(epochs.len() as u32);
        for epoch in chunk_epochs {
            buf.put_u32_le(*epoch);
        }
        for per_attr in epochs {
            debug_assert_eq!(per_attr.len(), arity);
            for remap in per_attr {
                match remap {
                    None => buf.put_u8(0),
                    Some(remap) => {
                        buf.put_u8(1);
                        buf.put_u32_le(remap.len() as u32);
                        for gid in remap.iter() {
                            buf.put_u32_le(*gid);
                        }
                    }
                }
            }
        }
    }
}

/// Serialize in the v2 footer-indexed whole-chunk format (kept for
/// round-trip tests and for producing files readable by v2-only consumers).
pub fn to_bytes_v2(table: &CompressedTable) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(2);

    // Chunk blobs, back-to-back; remember (offset, len) for the footer.
    let mut locations = Vec::with_capacity(table.chunks().len());
    for chunk in table.chunks() {
        let offset = buf.len() as u64;
        write_chunk(&mut buf, chunk);
        locations.push((offset, buf.len() as u64 - offset));
    }

    // Footer.
    let footer_start = buf.len() as u64;
    buf.put_u64_le(table.options().chunk_size as u64);
    write_schema(&mut buf, table.schema());
    for meta in table.metas() {
        write_meta(&mut buf, meta);
    }
    buf.put_u64_le(table.num_rows() as u64);
    buf.put_u32_le(table.chunks().len() as u32);
    for ((offset, len), entry) in locations.iter().zip(table.index_entries()) {
        buf.put_u64_le(*offset);
        buf.put_u64_le(*len);
        write_entry_base(&mut buf, entry);
    }
    let footer_len = buf.len() as u64 - footer_start;

    // Tail.
    buf.put_u64_le(footer_len);
    buf.put_u32_le(MAGIC);
    buf.freeze()
}

/// Serialize in the legacy v1 eager format (kept for round-trip tests and
/// for producing files readable by v1-only consumers).
pub fn to_bytes_v1(table: &CompressedTable) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(MAGIC);
    buf.put_u32_le(1);
    buf.put_u64_le(table.options().chunk_size as u64);
    write_schema(&mut buf, table.schema());
    for meta in table.metas() {
        write_meta(&mut buf, meta);
    }
    buf.put_u64_le(table.num_rows() as u64);
    buf.put_u32_le(table.chunks().len() as u32);
    for chunk in table.chunks() {
        write_chunk(&mut buf, chunk);
    }
    buf.freeze()
}

/// Deserialize a compressed table from bytes (v1–v4), materializing every
/// chunk.
pub fn from_bytes(data: &[u8]) -> Result<CompressedTable> {
    let mut buf = data;
    let magic = get_u32(&mut buf)?;
    if magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad magic {magic:#x}")));
    }
    match get_u32(&mut buf)? {
        1 => from_bytes_v1(buf),
        v @ 2..=4 => from_bytes_footered(data, v),
        v => Err(StorageError::BadVersion(v)),
    }
}

/// v1: header-first eager blob; `buf` starts right after magic + version.
fn from_bytes_v1(mut buf: &[u8]) -> Result<CompressedTable> {
    let chunk_size = get_u64(&mut buf)? as usize;
    let schema = read_schema(&mut buf)?;
    let mut metas = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        metas.push(read_meta(&mut buf)?);
    }
    let num_rows = get_u64(&mut buf)? as usize;
    let num_chunks = get_u32(&mut buf)? as usize;
    let mut chunks = Vec::with_capacity(num_chunks);
    for _ in 0..num_chunks {
        chunks.push(read_chunk(&mut buf, schema.arity())?);
    }
    if buf.has_remaining() {
        return Err(StorageError::Corrupt(format!("{} trailing bytes", buf.remaining())));
    }
    CompressedTable::from_parts(
        schema,
        metas,
        chunks,
        num_rows,
        CompressionOptions::with_chunk_size(chunk_size.max(1)),
    )
}

/// v2/v3/v4: parse the footer from the tail, then decode every blob.
fn from_bytes_footered(data: &[u8], version: u32) -> Result<CompressedTable> {
    let footer = parse_footer_region(data, version)?;
    let arity = footer.meta.schema().arity();
    let mut chunks = Vec::with_capacity(footer.locations.len());
    match &footer.layouts {
        // v3/v4: assemble each chunk from its independently addressed blobs.
        Some(layouts) => {
            let user_idx = footer.meta.schema().user_idx();
            for (ci, layout) in layouts.iter().enumerate() {
                let corrupt = |e: StorageError| StorageError::Corrupt(format!("chunk {ci}: {e}"));
                let (start, end) =
                    (layout.rle.offset as usize, (layout.rle.offset + layout.rle.len) as usize);
                let mut rle = decode_rle_blob(&data[start..end]).map_err(corrupt)?;
                if let Some(remap) = footer.remap_for(ci, user_idx) {
                    rle = rle.remap_users(remap).map_err(corrupt)?;
                }
                let mut columns: Vec<Option<Arc<ChunkColumn>>> = vec![None; arity];
                for (idx, loc) in layout.cols.iter().enumerate() {
                    if idx == user_idx {
                        continue;
                    }
                    let (start, end) = (loc.offset as usize, (loc.offset + loc.len) as usize);
                    let col_err = |e: StorageError| {
                        StorageError::Corrupt(format!("chunk {ci}: col {idx}: {e}"))
                    };
                    let mut col =
                        decode_column_blob_loc(&data[start..end], loc).map_err(col_err)?;
                    if let Some(remap) = footer.remap_for(ci, idx) {
                        col = col.remap_gids(remap).map_err(col_err)?;
                    }
                    columns[idx] = Some(Arc::new(col));
                }
                chunks.push(Chunk::from_shared(Arc::new(rle), columns)?);
            }
        }
        // v2: one self-contained blob per chunk.
        None => {
            for (ci, (offset, len)) in footer.locations.iter().enumerate() {
                let (start, end) = (*offset as usize, (*offset + *len) as usize);
                let chunk = decode_chunk_blob(&data[start..end], arity)
                    .map_err(|e| StorageError::Corrupt(format!("chunk {ci}: {e}")))?;
                chunks.push(chunk);
            }
        }
    }
    let table = CompressedTable::from_parts(
        footer.meta.schema().clone(),
        footer.meta.metas().to_vec(),
        chunks,
        footer.meta.num_rows(),
        footer.meta.options(),
    )?;
    // The footer's index entries are untrusted input: they must agree with
    // the entries recomputed from the decoded chunks, or pruning decisions
    // would silently disagree with the data. (v2 entries carry no column
    // stats and compare on their base fields.)
    let consistent = table
        .index_entries()
        .iter()
        .zip(footer.entries.iter())
        .all(|(computed, stored)| stored.matches(computed));
    if !consistent || table.index_entries().len() != footer.entries.len() {
        return Err(StorageError::Corrupt("footer index disagrees with chunk payloads".into()));
    }
    Ok(table)
}

/// Write a compressed table to a file (current v4 format).
pub fn write_file(table: &CompressedTable, path: &Path) -> Result<()> {
    std::fs::write(path, to_bytes(table))?;
    Ok(())
}

/// Read a compressed table from a file (any version), materializing every
/// chunk. For lazy access to v2/v3 files use
/// [`FileSource`](crate::source::FileSource) instead.
pub fn read_file(path: &Path) -> Result<CompressedTable> {
    let data = std::fs::read(path)?;
    from_bytes(&data)
}

// ----------------------------------------------------------------- append

/// What one [`append`] did to a file.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AppendStats {
    /// Tuples in the appended batch.
    pub rows_appended: usize,
    /// Chunks in the file before the append.
    pub chunks_before: usize,
    /// Chunks in the file after the append.
    pub chunks_after: usize,
    /// Old chunks that had to be re-encoded because the batch contained
    /// activity of users already living in them (chunking never splits a
    /// user, so a returning user's old and new tuples must land in one
    /// chunk). Their previous blob versions become dead bytes.
    pub chunks_rewritten: usize,
    /// Bytes written at the tail (new blobs + footer + tail marker).
    pub bytes_appended: u64,
    /// Dead bytes now in the file: superseded footers and rewritten chunk
    /// versions, reclaimable by [`compact`].
    pub dead_bytes: u64,
    /// Total file size after the append.
    pub file_bytes: u64,
}

/// What one [`compact`] reclaimed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// File size before compaction.
    pub bytes_before: u64,
    /// File size after compaction.
    pub bytes_after: u64,
    /// `bytes_before - bytes_after` (0 if the rewrite grew the file).
    pub reclaimed_bytes: u64,
    /// Chunks before compaction (appends leave under-filled chunks).
    pub chunks_before: usize,
    /// Chunks after re-chunking at the configured target size.
    pub chunks_after: usize,
    /// Total tuples (unchanged by compaction).
    pub rows: usize,
}

/// Check that a file starts with a growable (v3/v4) header and return its
/// version, with an operation-specific hint for v1/v2 files (which are
/// immutable snapshots in those formats).
fn require_growable(header: &[u8], what: &str) -> Result<u32> {
    let mut cur = header;
    let magic = get_u32(&mut cur)?;
    if magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad magic {magic:#x}")));
    }
    match get_u32(&mut cur)? {
        v @ (3 | 4) => Ok(v),
        v @ (1 | 2) => Err(StorageError::Unsupported(format!(
            "cannot {what} a version {v} file: only v3+ column-addressable files support in-place \
             growth; load it eagerly with persist::read_file and re-save with persist::write_file \
             to migrate"
        ))),
        v => Err(StorageError::BadVersion(v)),
    }
}

fn read_exact_at(file: &mut std::fs::File, offset: u64, len: u64) -> Result<Vec<u8>> {
    let mut buf = vec![0u8; len as usize];
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(&mut buf)?;
    Ok(buf)
}

/// Decode one chunk of an open v3/v4 file into current-dictionary terms.
/// `rle` is the chunk's already-decoded (and remapped) user column when the
/// caller has it — the returning-user scan decodes every RLE anyway.
fn read_chunk_at(
    file: &mut std::fs::File,
    footer: &Footer,
    layout: &ChunkLayout,
    ci: usize,
    rle: Option<UserRle>,
) -> Result<Chunk> {
    let schema = footer.meta.schema();
    let rle = match rle {
        Some(rle) => rle,
        None => {
            let mut rle =
                decode_rle_blob(&read_exact_at(file, layout.rle.offset, layout.rle.len)?)?;
            if let Some(remap) = footer.remap_for(ci, schema.user_idx()) {
                rle = rle.remap_users(remap)?;
            }
            rle
        }
    };
    let mut columns: Vec<Option<Arc<ChunkColumn>>> = vec![None; schema.arity()];
    for (idx, loc) in layout.cols.iter().enumerate() {
        if idx == schema.user_idx() {
            continue;
        }
        let mut col = decode_column_blob_loc(&read_exact_at(file, loc.offset, loc.len)?, loc)?;
        if let Some(remap) = footer.remap_for(ci, idx) {
            col = col.remap_gids(remap)?;
        }
        columns[idx] = Some(Arc::new(col));
    }
    let chunk = Chunk::from_shared(Arc::new(rle), columns)?;
    crate::table::validate_chunk(&footer.meta, ci, &chunk)?;
    Ok(chunk)
}

/// Compose two remap steps: `a` maps an epoch's gids into the previous
/// current dictionary, `step` maps the previous current dictionary into the
/// new one. `None` is the identity.
fn compose_remaps(a: &EpochRemaps, step: &EpochRemaps) -> Result<EpochRemaps> {
    a.iter()
        .zip(step)
        .map(|(a, s)| match (a, s) {
            (None, None) => Ok(None),
            (None, Some(s)) => Ok(Some(s.clone())),
            (Some(a), None) => Ok(Some(a.clone())),
            (Some(a), Some(s)) => {
                let composed: Result<Vec<u32>> = a
                    .iter()
                    .map(|&g| {
                        s.get(g as usize).copied().ok_or_else(|| {
                            StorageError::Corrupt(format!(
                                "epoch remap gid {g} outside the next step (size {})",
                                s.len()
                            ))
                        })
                    })
                    .collect();
                Ok(Some(Arc::new(composed?)))
            }
        })
        .collect()
}

/// Extend an existing v3/v4 file **in place** with a batch of activity
/// tuples, preserving the file's format version (v4 appends codec-compress
/// the new blobs, v3 appends stay raw).
///
/// The batch is sorted and encoded into chunk-sized runs against the file's
/// dictionaries *merged* with the batch's new values; the new chunks' blobs
/// are written after the old footer position and a fresh footer is
/// serialized at the tail. Nothing already on disk is re-encoded **except**
/// chunks holding users that also appear in the batch: a returning user's
/// old and new tuples must live in one chunk (the §4.1 invariant every
/// executor pass relies on), so those chunks are decoded, merged with the
/// user's new activity, and re-appended — their old blob versions, like the
/// old footer, become dead bytes until [`compact`] reclaims them.
///
/// New dictionary values that sort into the middle of a global dictionary do
/// **not** shift the ids stored in existing blobs: the footer records, per
/// dictionary *epoch*, the strictly increasing remap from that epoch's gids
/// into the merged dictionary, and the decode path re-bases old chunks
/// through it. The merged dictionaries stay sorted, so `rank`-based ordering
/// predicates remain valid.
///
/// v1/v2 files are rejected with [`StorageError::Unsupported`] — re-save
/// them as v3 first. The batch must have the file's schema, and its primary
/// keys must not collide with existing tuples.
///
/// Readers holding the file open (e.g. a
/// [`FileSource`](crate::source::FileSource)) are unaffected: their footer
/// still describes exactly the bytes it did at open time. Call
/// [`FileSource::refresh`](crate::source::FileSource::refresh) (or re-open)
/// to observe the appended data.
///
/// **Single writer.** Appends are not internally synchronized: two
/// concurrent `append`s to one file would read the same footer and write
/// overlapping tails, corrupting it. Serialize writers externally — the
/// engine's `Cohana::ingest` does (one write lock per engine);
/// out-of-engine callers own the coordination.
pub fn append(path: &Path, batch: &ActivityTable) -> Result<AppendStats> {
    let mut file = std::fs::OpenOptions::new().read(true).write(true).open(path)?;
    let total = file.seek(SeekFrom::End(0))?;
    if total < HEADER_LEN + TAIL_LEN {
        return Err(StorageError::Corrupt("file too short for header + tail".into()));
    }
    let header = read_exact_at(&mut file, 0, HEADER_LEN)?;
    let version = require_growable(&header, "append to")?;
    let footer = read_footer_from_file(&mut file)?;
    let schema = footer.meta.schema().clone();
    if &schema != batch.schema() {
        return Err(StorageError::Invalid(
            "append batch schema differs from the file's schema".into(),
        ));
    }
    let chunks_before = footer.locations.len();
    if batch.is_empty() {
        return Ok(AppendStats {
            chunks_before,
            chunks_after: chunks_before,
            file_bytes: total,
            dead_bytes: dead_bytes(total, &footer),
            ..AppendStats::default()
        });
    }
    let layouts = footer.layouts.as_ref().expect("v3+ footers always carry layouts").clone();

    // Merge the batch's new values into every dictionary, remembering the
    // strictly increasing remap of each old dictionary into its merged form;
    // widen integer ranges.
    let old_is_empty = footer.meta.num_rows() == 0;
    let mut metas = Vec::with_capacity(schema.arity());
    let mut step: EpochRemaps = Vec::with_capacity(schema.arity());
    for (idx, meta) in footer.meta.metas().iter().enumerate() {
        match meta {
            ColumnMeta::User { dict } | ColumnMeta::Str { dict } => {
                let (merged, remap) = dict.merge_with(batch.distinct_strings(idx));
                let identity = merged.len() == dict.len();
                step.push((!identity).then(|| Arc::new(remap)));
                metas.push(if matches!(meta, ColumnMeta::User { .. }) {
                    ColumnMeta::User { dict: merged }
                } else {
                    ColumnMeta::Str { dict: merged }
                });
            }
            ColumnMeta::Int { min, max } => {
                let (bmin, bmax) = batch.int_range(idx).expect("batch is non-empty");
                let (min, max) =
                    if old_is_empty { (bmin, bmax) } else { ((*min).min(bmin), (*max).max(bmax)) };
                step.push(None);
                metas.push(ColumnMeta::Int { min, max });
            }
        }
    }

    // Old chunks containing users that also appear in the batch must be
    // rewritten (their RLE blobs are cheap to scan relative to full chunk
    // payloads). Remapping the whole RLE up front surfaces any gid outside
    // its dictionary epoch as corruption instead of silently misclassifying
    // the chunk, and hands the decoded user column to the rewrite below.
    let user_idx = schema.user_idx();
    let old_user_dict = footer.meta.global_dict(user_idx).expect("user dictionary");
    let returning: std::collections::HashSet<u32> = batch
        .distinct_strings(user_idx)
        .into_iter()
        .filter_map(|u| old_user_dict.lookup(u))
        .collect();
    let mut affected = vec![false; chunks_before];
    let mut affected_rles: Vec<Option<UserRle>> = (0..chunks_before).map(|_| None).collect();
    if !returning.is_empty() {
        for (ci, layout) in layouts.iter().enumerate() {
            let mut rle =
                decode_rle_blob(&read_exact_at(&mut file, layout.rle.offset, layout.rle.len)?)
                    .map_err(|e| StorageError::Corrupt(format!("chunk {ci}: {e}")))?;
            if let Some(remap) = footer.remap_for(ci, user_idx) {
                rle = rle
                    .remap_users(remap)
                    .map_err(|e| StorageError::Corrupt(format!("chunk {ci}: {e}")))?;
            }
            if rle.runs().any(|run| returning.contains(&run.user_gid)) {
                affected[ci] = true;
                affected_rles[ci] = Some(rle);
            }
        }
    }

    // The delta: every rewritten chunk's rows plus the batch, re-sorted into
    // primary-key order and encoded against the merged dictionaries.
    let mut builder = TableBuilder::with_capacity(schema.clone(), batch.num_rows());
    for (ci, layout) in layouts.iter().enumerate() {
        if !affected[ci] {
            continue;
        }
        let chunk = read_chunk_at(&mut file, &footer, layout, ci, affected_rles[ci].take())?;
        for values in crate::table::chunk_rows(&footer.meta, &chunk) {
            builder.push(values).map_err(|e| StorageError::Corrupt(e.to_string()))?;
        }
    }
    for row in batch.rows() {
        builder.push(row.values().to_vec()).map_err(|e| StorageError::Invalid(e.to_string()))?;
    }
    let delta = builder.finish().map_err(|e| {
        StorageError::Invalid(format!("append batch conflicts with existing data: {e}"))
    })?;
    let delta_ct = CompressedTable::build_with_metas(&delta, metas.clone(), footer.meta.options())?;

    // Compose the dictionary epochs. Surviving chunks keep their numeric
    // epoch tag: when the step is non-trivial it is pushed as a new epoch at
    // index `old epochs.len()`, exactly the tag previously meaning
    // "current". If nothing survives, the epoch history resets.
    let old_epoch_of = |ci: usize| -> u32 {
        footer.chunk_epochs.get(ci).copied().unwrap_or(footer.epochs.len() as u32)
    };
    let surviving: Vec<usize> = (0..chunks_before).filter(|&ci| !affected[ci]).collect();
    let step_identity = step.iter().all(Option::is_none);
    let epochs: Vec<EpochRemaps> = if surviving.is_empty() {
        Vec::new()
    } else if step_identity {
        footer.epochs.clone()
    } else {
        let mut composed: Vec<EpochRemaps> =
            footer.epochs.iter().map(|e| compose_remaps(e, &step)).collect::<Result<_>>()?;
        composed.push(step.clone());
        composed
    };
    let current_epoch = epochs.len() as u32;

    // Assemble the new footer: surviving old chunks (offsets untouched,
    // action gids re-based onto the merged dictionary) followed by the delta
    // chunks at the tail.
    let action_remap = step[schema.action_idx()].as_ref();
    let mut all_layouts: Vec<ChunkLayout> =
        Vec::with_capacity(surviving.len() + delta_ct.chunks().len());
    let mut all_entries: Vec<ChunkIndexEntry> = Vec::with_capacity(all_layouts.capacity());
    let mut chunk_epochs: Vec<u32> = Vec::with_capacity(all_layouts.capacity());
    for &ci in &surviving {
        let mut entry = footer.entries[ci].clone();
        if let Some(remap) = action_remap {
            for gid in &mut entry.action_gids {
                *gid = *remap.get(*gid as usize).ok_or_else(|| {
                    StorageError::Corrupt(format!(
                        "chunk {ci}: action gid {gid} outside the old dictionary"
                    ))
                })?;
            }
        }
        all_layouts.push(layouts[ci].clone());
        all_entries.push(entry);
        chunk_epochs.push(old_epoch_of(ci));
    }
    let mut tail_buf = BytesMut::new();
    let new_layouts = write_blobs(&mut tail_buf, delta_ct.chunks(), &schema, total, version);
    for (layout, entry) in new_layouts.into_iter().zip(delta_ct.index_entries()) {
        all_layouts.push(layout);
        all_entries.push(entry.clone());
        chunk_epochs.push(current_epoch);
    }
    let num_rows: u64 = all_entries.iter().map(|e| e.num_rows).sum();

    let footer_start = total + tail_buf.len() as u64;
    write_footer(
        &mut tail_buf,
        version,
        footer.meta.options().chunk_size,
        &schema,
        &metas,
        num_rows,
        &all_layouts,
        &all_entries,
        &epochs,
        if epochs.is_empty() { &[] } else { &chunk_epochs },
    );
    let footer_len = total + tail_buf.len() as u64 - footer_start;
    tail_buf.put_u64_le(footer_len);
    tail_buf.put_u32_le(MAGIC);

    // One contiguous write at the old EOF: the old footer (still describing
    // exactly the old bytes) is left in place as dead bytes, so a reader
    // that opened the file before this append keeps a consistent snapshot.
    file.seek(SeekFrom::Start(total))?;
    file.write_all(&tail_buf)?;

    let file_bytes = total + tail_buf.len() as u64;
    let live_payload: u64 =
        all_layouts.iter().map(|l| l.rle.len + l.cols.iter().map(|loc| loc.len).sum::<u64>()).sum();
    Ok(AppendStats {
        rows_appended: batch.num_rows(),
        chunks_before,
        chunks_after: all_layouts.len(),
        chunks_rewritten: affected.iter().filter(|a| **a).count(),
        bytes_appended: tail_buf.len() as u64,
        dead_bytes: file_bytes - HEADER_LEN - live_payload - footer_len - TAIL_LEN,
        file_bytes,
    })
}

/// Dead (unreferenced) payload bytes in a parsed file image.
fn dead_bytes(total: u64, footer: &Footer) -> u64 {
    let live: u64 = footer.locations.iter().map(|(_, len)| *len).sum();
    let footer_len = total - TAIL_LEN - footer.payload_end;
    total - HEADER_LEN - live - footer_len - TAIL_LEN
}

/// Space accounting of one on-disk table file, readable from the footer
/// alone — O(footer), no chunk payload is touched. This is what a
/// maintenance policy polls to decide whether a file has accumulated enough
/// superseded bytes (rewritten chunks, earlier footers) to be worth
/// compacting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FileSpaceStats {
    /// Total size of the file on disk.
    pub file_bytes: u64,
    /// Unreferenced payload bytes: superseded chunk versions and earlier
    /// footers left behind by [`append`], reclaimable by [`compact`].
    pub dead_bytes: u64,
    /// Live rows the current footer describes.
    pub rows: u64,
    /// Chunks the current footer describes.
    pub chunks: usize,
}

impl FileSpaceStats {
    /// Fraction of the file that is dead bytes (0.0 for a freshly built or
    /// freshly compacted file).
    pub fn dead_ratio(&self) -> f64 {
        self.dead_bytes as f64 / self.file_bytes.max(1) as f64
    }
}

/// Read the space accounting of a v2/v3/v4 file: total size plus the dead
/// bytes its current footer no longer references. Costs one footer parse.
pub fn file_space_stats(path: &Path) -> Result<FileSpaceStats> {
    let mut file = std::fs::File::open(path)?;
    let footer = read_footer_from_file(&mut file)?;
    let total = file.metadata()?.len();
    Ok(FileSpaceStats {
        file_bytes: total,
        dead_bytes: dead_bytes(total, &footer),
        rows: footer.entries.iter().map(|e| e.num_rows).sum(),
        chunks: footer.locations.len(),
    })
}

/// Rewrite a v3/v4 file compactly: decode everything (through any
/// dictionary epochs), re-sort into the paper's §3 `(user, time, action)`
/// primary order, re-chunk at the configured target size, rebuild minimal
/// sorted dictionaries, and atomically replace the file (write to a sibling
/// temp file, then rename). This merges the under-filled chunks appends
/// leave behind, restores the §4.2 pruning quality of time-clustered
/// chunks, drops every dead byte, and resets the epoch history. The rewrite
/// always emits the current [`VERSION`], so compacting a v3 file doubles as
/// the v3 → v4 migration path.
pub fn compact(path: &Path) -> Result<CompactStats> {
    let data = std::fs::read(path)?;
    let bytes_before = data.len() as u64;
    if data.len() < HEADER_LEN as usize {
        return Err(StorageError::Corrupt("file too short for header".into()));
    }
    require_growable(&data[..HEADER_LEN as usize], "compact")?;
    let table = from_bytes(&data)?;
    let chunks_before = table.chunks().len();
    let rows = table.decompress()?;
    let rebuilt = CompressedTable::build(&rows, table.options())?;
    let bytes = to_bytes(&rebuilt);

    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".compact-tmp");
    let tmp = std::path::PathBuf::from(tmp);
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;

    Ok(CompactStats {
        bytes_before,
        bytes_after: bytes.len() as u64,
        reclaimed_bytes: bytes_before.saturating_sub(bytes.len() as u64),
        chunks_before,
        chunks_after: rebuilt.chunks().len(),
        rows: rebuilt.num_rows(),
    })
}

// --------------------------------------------------------------- inspect

/// Aggregate statistics for one codec across every blob of a file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CodecStats {
    /// Number of blobs (RLE + column) encoded with this codec.
    pub blobs: usize,
    /// Total on-disk bytes of those blobs.
    pub compressed_bytes: u64,
    /// Total bytes those blobs decode (serialize raw) to.
    pub uncompressed_bytes: u64,
    /// Wall time [`inspect`] spent decoding those blobs, in nanoseconds.
    pub decode_nanos: u64,
}

impl CodecStats {
    /// Decode throughput in MB/s of *decoded* output (0.0 before any
    /// blob has been timed). "MB" here is 10^6 bytes, matching the bench
    /// reports.
    pub fn decode_mbps(&self) -> f64 {
        if self.decode_nanos == 0 {
            0.0
        } else {
            self.uncompressed_bytes as f64 * 1000.0 / self.decode_nanos as f64
        }
    }
}

/// Per-attribute compression summary. The user attribute's row covers the
/// RLE user blob, which is always raw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnCompression {
    /// Attribute name from the schema.
    pub name: String,
    /// Total on-disk bytes across all chunks.
    pub compressed_bytes: u64,
    /// Total decoded (raw v3-serialized) bytes across all chunks.
    pub uncompressed_bytes: u64,
}

impl ColumnCompression {
    /// Uncompressed-to-compressed size ratio (1.0 for raw columns).
    pub fn ratio(&self) -> f64 {
        self.uncompressed_bytes as f64 / self.compressed_bytes.max(1) as f64
    }
}

/// What [`inspect`] reports about a column-addressable (v3/v4) file.
#[derive(Debug, Clone)]
pub struct FormatInfo {
    /// On-disk format version (3 or 4).
    pub version: u32,
    /// Total rows across all chunks.
    pub num_rows: usize,
    /// Number of chunks.
    pub num_chunks: usize,
    /// One entry per schema attribute, in schema order.
    pub columns: Vec<ColumnCompression>,
    /// Aggregates indexed by codec tag: raw, delta, ans.
    pub codecs: [CodecStats; 3],
}

impl FormatInfo {
    /// Total live on-disk payload bytes (header, footer and any dead bytes
    /// excluded).
    pub fn compressed_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.compressed_bytes).sum()
    }

    /// Total decoded payload bytes.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.columns.iter().map(|c| c.uncompressed_bytes).sum()
    }

    /// Whole-payload uncompressed-to-compressed ratio.
    pub fn ratio(&self) -> f64 {
        self.uncompressed_bytes() as f64 / self.compressed_bytes().max(1) as f64
    }
}

/// Walk every live blob of a v3/v4 file, decode each through its codec
/// tag, and report per-column and per-codec size and decode-time
/// aggregates. This is the measurement backbone of the `lazy-io` bench
/// experiment and doubles as a whole-file decode validation pass.
pub fn inspect(path: &Path) -> Result<FormatInfo> {
    let data = std::fs::read(path)?;
    if data.len() < HEADER_LEN as usize {
        return Err(StorageError::Corrupt("file too short for header".into()));
    }
    let mut cur = &data[..HEADER_LEN as usize];
    let magic = get_u32(&mut cur)?;
    if magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let version = get_u32(&mut cur)?;
    if !matches!(version, 3 | 4) {
        return Err(StorageError::Unsupported(format!(
            "inspect needs the per-blob layouts of a v3/v4 file, got version {version}"
        )));
    }
    let footer = parse_footer_region(&data, version)?;
    let layouts = footer.layouts.as_ref().expect("v3+ footers always carry layouts");
    let schema = footer.meta.schema();
    let user_idx = schema.user_idx();
    let mut columns: Vec<ColumnCompression> = (0..schema.arity())
        .map(|i| ColumnCompression {
            name: schema.attribute(i).name.clone(),
            compressed_bytes: 0,
            uncompressed_bytes: 0,
        })
        .collect();
    let mut codecs = [CodecStats::default(); 3];
    let mut record = |columns: &mut Vec<ColumnCompression>, idx: usize, loc: &BlobLoc, ns: u64| {
        columns[idx].compressed_bytes += loc.len;
        columns[idx].uncompressed_bytes += loc.uncompressed;
        let c = &mut codecs[loc.codec.tag() as usize];
        c.blobs += 1;
        c.compressed_bytes += loc.len;
        c.uncompressed_bytes += loc.uncompressed;
        c.decode_nanos += ns;
    };
    // One scratch vector reused across every column blob: inspect only
    // needs the decoded values for timing/validation, so it takes the
    // decode-into-scratch path and skips the BitPacked repack.
    let mut scratch: Vec<u64> = Vec::new();
    for (layout, entry) in layouts.iter().zip(&footer.entries) {
        let loc = &layout.rle;
        let blob = &data[loc.offset as usize..(loc.offset + loc.len) as usize];
        let start = std::time::Instant::now();
        decode_rle_blob(blob)?;
        record(&mut columns, user_idx, loc, start.elapsed().as_nanos() as u64);
        for (idx, loc) in layout.cols.iter().enumerate() {
            if idx == user_idx {
                continue;
            }
            let blob = &data[loc.offset as usize..(loc.offset + loc.len) as usize];
            let start = std::time::Instant::now();
            decode_column_values_into(blob, loc, entry.num_rows, &mut scratch)?;
            record(&mut columns, idx, loc, start.elapsed().as_nanos() as u64);
        }
    }
    Ok(FormatInfo {
        version,
        num_rows: footer.meta.num_rows(),
        num_chunks: layouts.len(),
        columns,
        codecs,
    })
}

// ------------------------------------------------------------------ footer

/// The byte location of one blob plus how it is encoded: where it lives,
/// how many bytes it occupies on disk, the codec its packed-array section
/// was written with, and the exact length the blob serializes to once
/// decoded back to raw v3 form. For v1–v3 files `codec` is always
/// [`Codec::Raw`] and `uncompressed == len`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BlobLoc {
    pub(crate) offset: u64,
    pub(crate) len: u64,
    pub(crate) codec: Codec,
    pub(crate) uncompressed: u64,
}

impl BlobLoc {
    /// A raw (uncompressed) blob: on-disk bytes are the decoded bytes.
    pub(crate) fn raw(offset: u64, len: u64) -> Self {
        BlobLoc { offset, len, codec: Codec::Raw, uncompressed: len }
    }

    /// The all-zero placeholder used at the user attribute's column slot
    /// (the user column lives in the RLE blob instead).
    pub(crate) fn absent() -> Self {
        BlobLoc { offset: 0, len: 0, codec: Codec::Raw, uncompressed: 0 }
    }
}

/// Byte locations of one v3/v4 chunk's blobs: the RLE user column plus one
/// entry per attribute ([`BlobLoc::absent`] at the user attribute's
/// position).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ChunkLayout {
    /// Location of the RLE blob (always raw).
    pub(crate) rle: BlobLoc,
    /// Location of each attribute's column blob.
    pub(crate) cols: Vec<BlobLoc>,
}

/// One dictionary epoch's gid remaps: for every attribute, either `None`
/// (integer attribute, or a dictionary unchanged since that epoch) or the
/// strictly increasing map from the epoch's global ids into the file's
/// current (merged) dictionary. Chunks encoded under an older epoch are
/// re-based through their epoch's remap at decode time, which is what lets
/// [`append`] grow a dictionary **without rewriting any existing blob** while
/// keeping the current dictionary sorted (so `rank`-based ordering
/// predicates stay valid).
pub(crate) type EpochRemaps = Vec<Option<Arc<Vec<u32>>>>;

/// Parsed footer: table metadata, per-chunk index entries, per-chunk payload
/// spans, and (v3) per-blob layouts.
pub(crate) struct Footer {
    pub(crate) meta: TableMeta,
    pub(crate) entries: Vec<ChunkIndexEntry>,
    /// `(offset, len)` of each chunk's whole payload span (v2: the chunk
    /// blob; v3: RLE through last column, which tile contiguously). Appended
    /// files may have dead-byte gaps *between* spans (superseded chunk
    /// versions and earlier footers), never inside one.
    pub(crate) locations: Vec<(u64, u64)>,
    /// v3/v4 only: the per-blob layout of every chunk.
    pub(crate) layouts: Option<Vec<ChunkLayout>>,
    /// Non-current dictionary epochs, oldest first (empty for files never
    /// appended to, or fully rewritten by [`compact`]).
    pub(crate) epochs: Vec<EpochRemaps>,
    /// Per chunk, the dictionary epoch its blobs were encoded under
    /// (`epochs.len()` = the current dictionary, needing no remap). An empty
    /// vector means every chunk is current.
    pub(crate) chunk_epochs: Vec<u32>,
    /// File offset where the footer begins — the exclusive upper bound of
    /// every payload blob.
    pub(crate) payload_end: u64,
}

impl Footer {
    /// The gid remap a given chunk needs for a given attribute (`None`:
    /// already in current-dictionary terms).
    pub(crate) fn remap_for(&self, chunk: usize, attr: usize) -> Option<&Arc<Vec<u32>>> {
        let epoch = self.chunk_epochs.get(chunk).copied().unwrap_or(self.epochs.len() as u32);
        self.epochs.get(epoch as usize).and_then(|per_attr| per_attr[attr].as_ref())
    }
}

/// Validate tail + header of a full footered image and parse its footer.
fn parse_footer_region(data: &[u8], version: u32) -> Result<Footer> {
    let total = data.len() as u64;
    if total < HEADER_LEN + TAIL_LEN {
        return Err(StorageError::Corrupt("file too short for header + tail".into()));
    }
    let mut tail = &data[(total - TAIL_LEN) as usize..];
    let footer_len = get_u64(&mut tail)?;
    let tail_magic = get_u32(&mut tail)?;
    if tail_magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad tail magic {tail_magic:#x}")));
    }
    if footer_len > total - HEADER_LEN - TAIL_LEN {
        return Err(footer_overrun(footer_len, total));
    }
    let footer_start = total - TAIL_LEN - footer_len;
    let footer_bytes = &data[footer_start as usize..(total - TAIL_LEN) as usize];
    read_footer(footer_bytes, footer_start, version)
}

/// The error for a tail whose footer length points outside the file — the
/// signature of a truncated or mis-appended image. Names the offsets so the
/// operator can see where the file ends versus where the footer claims to
/// live.
fn footer_overrun(footer_len: u64, total: u64) -> StorageError {
    let claimed_start = total as i128 - TAIL_LEN as i128 - footer_len as i128;
    StorageError::Corrupt(format!(
        "footer of length {footer_len} would start at offset {claimed_start}, outside the valid \
         payload region [{HEADER_LEN}, {}) of this {total}-byte file (truncated or corrupt tail)",
        total - TAIL_LEN,
    ))
}

/// Parse the footer bytes of a v2 or v3 image; `footer_start` is the file
/// offset where the footer begins (== the end of the payload region), used
/// to validate blob locations.
fn read_footer(mut buf: &[u8], footer_start: u64, version: u32) -> Result<Footer> {
    let chunk_size = get_u64(&mut buf)? as usize;
    // The writer never produces 0 (CompressedTable::build rejects it), so a
    // zero here is corruption, not a value to repair.
    if chunk_size == 0 {
        return Err(StorageError::Corrupt("footer chunk_size is zero".into()));
    }
    let schema = read_schema(&mut buf)?;
    let mut metas = Vec::with_capacity(schema.arity());
    for _ in 0..schema.arity() {
        metas.push(read_meta(&mut buf)?);
    }
    let num_rows = get_u64(&mut buf)? as usize;
    let num_chunks = get_u32(&mut buf)? as usize;
    let arity = schema.arity();
    // Guard the chunk count before allocating: every entry needs at least
    // its fixed-size fields.
    let min_entry = match version {
        2 => 52,
        // rle record + per-attr records + counts/bounds + n_actions +
        // 1-byte stats tags. v4 blob records additionally carry a codec
        // tag and an uncompressed length (9 bytes per blob).
        4 => 25 + 25 * arity + 32 + 4 + arity,
        _ => 16 + 16 * arity + 32 + 4 + arity,
    };
    if num_chunks > buf.remaining() / min_entry {
        return Err(StorageError::Corrupt(format!("chunk count {num_chunks} overruns footer")));
    }
    let mut entries = Vec::with_capacity(num_chunks);
    let mut locations = Vec::with_capacity(num_chunks);
    let mut layouts = (version >= 3).then(|| Vec::with_capacity(num_chunks));
    let mut expected_offset = HEADER_LEN;
    for ci in 0..num_chunks {
        // Blob locations must be monotone, non-overlapping, and inside
        // [HEADER_LEN, footer_start). A chunk's first blob may start past
        // the previous chunk's end — appended files carry dead bytes there
        // (superseded footers and rewritten chunks) — but within one chunk
        // the blobs tile exactly. Lengths are compared by subtraction
        // (`offset < footer_start` is checked first), so a crafted length
        // near u64::MAX cannot wrap the bound check.
        let span_start;
        let mut take_blob = |buf: &mut &[u8], what: &str, gap_ok: bool| -> Result<BlobLoc> {
            let offset = get_u64(buf)?;
            let len = get_u64(buf)?;
            let misplaced =
                if gap_ok { offset < expected_offset } else { offset != expected_offset };
            if misplaced || len == 0 || offset >= footer_start || len > footer_start - offset {
                return Err(StorageError::Corrupt(format!(
                    "chunk {ci}: {what} location ({offset}, {len}) does not tile the payload \
                     region"
                )));
            }
            expected_offset = offset + len;
            if version < 4 {
                return Ok(BlobLoc::raw(offset, len));
            }
            let tag = get_u8(buf)?;
            let uncompressed = get_u64(buf)?;
            let codec = Codec::from_tag(tag).ok_or_else(|| {
                StorageError::Corrupt(format!("chunk {ci}: {what} has unknown codec tag {tag}"))
            })?;
            // The write-time selector only picks a non-raw codec when it is
            // *strictly* smaller than raw, and the decoded size of any blob
            // is bounded by its row count (plus small per-blob headers), so
            // both inequalities are hard invariants, not heuristics. The
            // row-count bound caps what a crafted footer can make the
            // decoder allocate.
            let valid = match codec {
                Codec::Raw => uncompressed == len,
                _ => uncompressed > len && uncompressed <= 64 + 16 * num_rows as u64,
            };
            if !valid {
                return Err(StorageError::Corrupt(format!(
                    "chunk {ci}: {what} uncompressed length {uncompressed} is inconsistent \
                     with its {len}-byte {} blob",
                    codec.name(),
                )));
            }
            Ok(BlobLoc { offset, len, codec, uncompressed })
        };
        let layout = if version >= 3 {
            let rle = take_blob(&mut buf, "rle", true)?;
            if rle.codec != Codec::Raw {
                return Err(StorageError::Corrupt(format!(
                    "chunk {ci}: rle blob must be raw, found codec {}",
                    rle.codec.name(),
                )));
            }
            span_start = rle.offset;
            let mut cols = vec![BlobLoc::absent(); arity];
            for (idx, slot) in cols.iter_mut().enumerate() {
                if idx == schema.user_idx() {
                    let offset = get_u64(&mut buf)?;
                    let len = get_u64(&mut buf)?;
                    let mut zero = (offset, len) == (0, 0);
                    if version >= 4 {
                        zero &= get_u8(&mut buf)? == 0 && get_u64(&mut buf)? == 0;
                    }
                    if !zero {
                        return Err(StorageError::Corrupt(format!(
                            "chunk {ci}: user column has a blob location"
                        )));
                    }
                } else {
                    *slot = take_blob(&mut buf, "column", false)?;
                }
            }
            Some(ChunkLayout { rle, cols })
        } else {
            let chunk = take_blob(&mut buf, "chunk", true)?;
            span_start = chunk.offset;
            None
        };
        let num_rows = get_u64(&mut buf)?;
        let num_users = get_u64(&mut buf)?;
        let time_min = get_i64(&mut buf)?;
        let time_max = get_i64(&mut buf)?;
        let n_actions = get_u32(&mut buf)? as usize;
        if n_actions > buf.remaining() / 4 {
            return Err(StorageError::Corrupt(format!(
                "chunk {ci}: action dictionary count {n_actions} overruns footer"
            )));
        }
        let mut action_gids = Vec::with_capacity(n_actions);
        for _ in 0..n_actions {
            action_gids.push(get_u32(&mut buf)?);
        }
        if !action_gids.windows(2).all(|w| w[0] < w[1]) {
            return Err(StorageError::Corrupt(format!("chunk {ci}: action gids not sorted")));
        }
        let column_stats = if version >= 3 {
            let mut stats = Vec::with_capacity(arity);
            for (idx, meta) in metas.iter().enumerate() {
                let s = read_column_stats(&mut buf)?;
                // Stats kinds must agree with the attribute metadata.
                let agrees = matches!(
                    (&s, meta),
                    (ColumnStats::User, ColumnMeta::User { .. })
                        | (ColumnStats::Str { .. }, ColumnMeta::Str { .. })
                        | (ColumnStats::Int { .. }, ColumnMeta::Int { .. })
                );
                if !agrees {
                    return Err(StorageError::Corrupt(format!(
                        "chunk {ci}: column {idx} stats kind disagrees with metadata"
                    )));
                }
                stats.push(s);
            }
            stats
        } else {
            Vec::new()
        };
        entries.push(ChunkIndexEntry {
            num_rows,
            num_users,
            time_min,
            time_max,
            action_gids,
            column_stats,
        });
        locations.push((span_start, expected_offset - span_start));
        if let (Some(layouts), Some(layout)) = (layouts.as_mut(), layout) {
            layouts.push(layout);
        }
    }
    // Optional dictionary-epoch extension, present only in files that have
    // been appended to: per-chunk epoch tags, then one gid remap per
    // dictionary attribute for every non-current epoch.
    let mut epochs: Vec<EpochRemaps> = Vec::new();
    let mut chunk_epochs: Vec<u32> = Vec::new();
    if version >= 3 && buf.has_remaining() {
        let epoch_count = get_u32(&mut buf)? as usize;
        // Every epoch needs at least one tag byte per attribute, every chunk
        // a 4-byte tag; guard before allocating.
        if epoch_count == 0 || epoch_count > buf.remaining() / arity.max(1) {
            return Err(StorageError::Corrupt(format!(
                "epoch count {epoch_count} is invalid for this footer"
            )));
        }
        if num_chunks > buf.remaining() / 4 {
            return Err(StorageError::Corrupt("chunk epoch tags overrun footer".into()));
        }
        for ci in 0..num_chunks {
            let epoch = get_u32(&mut buf)?;
            if epoch as usize > epoch_count {
                return Err(StorageError::Corrupt(format!(
                    "chunk {ci}: epoch {epoch} exceeds epoch count {epoch_count}"
                )));
            }
            chunk_epochs.push(epoch);
        }
        for e in 0..epoch_count {
            let mut per_attr: EpochRemaps = Vec::with_capacity(arity);
            for (idx, meta) in metas.iter().enumerate() {
                match get_u8(&mut buf)? {
                    0 => per_attr.push(None),
                    1 => {
                        let dict_len = match meta {
                            ColumnMeta::User { dict } | ColumnMeta::Str { dict } => dict.len(),
                            ColumnMeta::Int { .. } => {
                                return Err(StorageError::Corrupt(format!(
                                    "epoch {e}: remap addressed to integer attribute {idx}"
                                )))
                            }
                        };
                        let n = get_u32(&mut buf)? as usize;
                        if n > buf.remaining() / 4 {
                            return Err(StorageError::Corrupt(format!(
                                "epoch {e}: remap length {n} overruns footer"
                            )));
                        }
                        let mut remap = Vec::with_capacity(n);
                        for _ in 0..n {
                            remap.push(get_u32(&mut buf)?);
                        }
                        let sorted = remap.windows(2).all(|w| w[0] < w[1]);
                        let in_range = remap.last().is_none_or(|&g| (g as usize) < dict_len);
                        if !sorted || !in_range {
                            return Err(StorageError::Corrupt(format!(
                                "epoch {e}: remap of attribute {idx} is not a sorted injection \
                                 into the current dictionary"
                            )));
                        }
                        per_attr.push(Some(Arc::new(remap)));
                    }
                    t => {
                        return Err(StorageError::Corrupt(format!("bad epoch remap tag {t}")));
                    }
                }
            }
            epochs.push(per_attr);
        }
    }
    if buf.has_remaining() {
        return Err(StorageError::Corrupt(format!("{} trailing footer bytes", buf.remaining())));
    }
    let total_rows: u64 = entries.iter().map(|e| e.num_rows).sum();
    if total_rows != num_rows as u64 {
        return Err(StorageError::Corrupt(format!(
            "index entries cover {total_rows} rows, footer claims {num_rows}"
        )));
    }
    let meta =
        TableMeta::new(schema, metas, num_rows, CompressionOptions::with_chunk_size(chunk_size))?;
    Ok(Footer {
        meta,
        entries,
        locations,
        layouts,
        epochs,
        chunk_epochs,
        payload_end: footer_start,
    })
}

/// Open a v2/v3 file for lazy access: verify the header, then read and
/// parse only the footer. Rejects v1 files (no footer) with a migration
/// hint.
pub(crate) fn read_footer_from_file(file: &mut std::fs::File) -> Result<Footer> {
    let total = file.seek(SeekFrom::End(0))?;
    if total < HEADER_LEN + TAIL_LEN {
        return Err(StorageError::Corrupt("file too short for header + tail".into()));
    }

    let mut header = [0u8; HEADER_LEN as usize];
    file.seek(SeekFrom::Start(0))?;
    file.read_exact(&mut header)?;
    let mut cur: &[u8] = &header;
    let magic = get_u32(&mut cur)?;
    if magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad magic {magic:#x}")));
    }
    let version = match get_u32(&mut cur)? {
        v @ 2..=4 => v,
        1 => {
            return Err(StorageError::Unsupported(
                "version 1 files have no chunk index footer and cannot be opened lazily; \
                 load eagerly with persist::read_file and re-save to migrate"
                    .into(),
            ))
        }
        v => return Err(StorageError::BadVersion(v)),
    };

    let mut tail = [0u8; TAIL_LEN as usize];
    file.seek(SeekFrom::Start(total - TAIL_LEN))?;
    file.read_exact(&mut tail)?;
    let mut cur: &[u8] = &tail;
    let footer_len = get_u64(&mut cur)?;
    let tail_magic = get_u32(&mut cur)?;
    if tail_magic != MAGIC {
        return Err(StorageError::Corrupt(format!("bad tail magic {tail_magic:#x}")));
    }
    if footer_len > total - HEADER_LEN - TAIL_LEN {
        return Err(footer_overrun(footer_len, total));
    }
    let footer_start = total - TAIL_LEN - footer_len;
    let mut footer_bytes = vec![0u8; footer_len as usize];
    file.seek(SeekFrom::Start(footer_start))?;
    file.read_exact(&mut footer_bytes)?;
    read_footer(&footer_bytes, footer_start, version)
}

/// Decode one self-contained whole-chunk blob (as located by a v2 footer).
pub(crate) fn decode_chunk_blob(blob: &[u8], arity: usize) -> Result<Chunk> {
    let mut buf = blob;
    let chunk = read_chunk(&mut buf, arity)?;
    if buf.has_remaining() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after chunk payload",
            buf.remaining()
        )));
    }
    Ok(chunk)
}

/// Decode one self-contained RLE blob (as located by a v3 footer).
pub(crate) fn decode_rle_blob(blob: &[u8]) -> Result<UserRle> {
    let mut buf = blob;
    let users = read_packed(&mut buf)?;
    let firsts = read_packed(&mut buf)?;
    let counts = read_packed(&mut buf)?;
    let rle = UserRle::from_parts(users, firsts, counts)?;
    if buf.has_remaining() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after rle payload",
            buf.remaining()
        )));
    }
    Ok(rle)
}

/// Decode one self-contained column blob (as located by a v3 footer).
pub(crate) fn decode_column_blob(blob: &[u8]) -> Result<ChunkColumn> {
    let mut buf = blob;
    let col = read_column(&mut buf)?
        .ok_or_else(|| StorageError::Corrupt("column blob holds no segment".into()))?;
    if buf.has_remaining() {
        return Err(StorageError::Corrupt(format!(
            "{} trailing bytes after column payload",
            buf.remaining()
        )));
    }
    Ok(col)
}

/// Decode one column blob through its footer record: raw blobs take the v3
/// path unchanged; codec-compressed blobs parse the raw header, then hand
/// the remaining bytes to [`codec::decode_array`] with the exact raw
/// section length implied by `loc.uncompressed` — which the codecs verify
/// against their own embedded width/length *before* allocating, and which
/// pins the decoded blob's v3 serialization to exactly `uncompressed`
/// bytes.
pub(crate) fn decode_column_blob_loc(blob: &[u8], loc: &BlobLoc) -> Result<ChunkColumn> {
    if loc.codec == Codec::Raw {
        return decode_column_blob(blob);
    }
    let mut buf = blob;
    let col = match get_u8(&mut buf)? {
        1 => {
            let n = get_u32(&mut buf)? as usize;
            if n > buf.remaining() / 4 {
                return Err(StorageError::Corrupt(format!(
                    "chunk dictionary count {n} overruns input"
                )));
            }
            let mut gids = Vec::with_capacity(n);
            for _ in 0..n {
                gids.push(get_u32(&mut buf)?);
            }
            let dict = ChunkDict::from_sorted(gids)?;
            let header_len = 5 + 4 * dict.len() as u64;
            let expected = section_len(loc, header_len)?;
            let codes = codec::decode_array(loc.codec, buf, expected)?;
            ChunkColumn::Str { dict, codes }
        }
        2 => {
            let min = get_i64(&mut buf)?;
            let max = get_i64(&mut buf)?;
            let deltas = codec::decode_array(loc.codec, buf, section_len(loc, 17)?)?;
            ChunkColumn::Int { min, max, deltas }
        }
        t => return Err(StorageError::Corrupt(format!("bad column tag {t}"))),
    };
    Ok(col)
}

/// Decode just the packed values of one column blob straight into a
/// caller-provided scratch vector — the decode-into-scratch path for
/// consumers that block-decode anyway ([`inspect`], the decode bench),
/// skipping the [`crate::bitpack::BitPacked`] repack. Works for raw and
/// codec-compressed blobs alike; `expected_rows` is the footer's row
/// count for the chunk, cross-checked against the section's own declared
/// length before any output allocation.
pub(crate) fn decode_column_values_into(
    blob: &[u8],
    loc: &BlobLoc,
    expected_rows: u64,
    values: &mut Vec<u64>,
) -> Result<()> {
    let mut buf = blob;
    let header_len = match get_u8(&mut buf)? {
        1 => {
            let n = get_u32(&mut buf)? as usize;
            if n > buf.remaining() / 4 {
                return Err(StorageError::Corrupt(format!(
                    "chunk dictionary count {n} overruns input"
                )));
            }
            let mut gids = Vec::with_capacity(n);
            for _ in 0..n {
                gids.push(get_u32(&mut buf)?);
            }
            let dict = ChunkDict::from_sorted(gids)?;
            5 + 4 * dict.len() as u64
        }
        2 => {
            get_i64(&mut buf)?;
            get_i64(&mut buf)?;
            17
        }
        t => return Err(StorageError::Corrupt(format!("bad column tag {t}"))),
    };
    codec::decode_section_into(
        loc.codec,
        buf,
        section_len(loc, header_len)?,
        Some(expected_rows),
        values,
    )?;
    Ok(())
}

/// The raw packed-section length a blob's footer record implies once its
/// `header_len`-byte raw header is accounted for.
fn section_len(loc: &BlobLoc, header_len: u64) -> Result<u64> {
    loc.uncompressed.checked_sub(header_len).ok_or_else(|| {
        StorageError::Corrupt(format!(
            "blob uncompressed length {} is shorter than its {header_len}-byte header",
            loc.uncompressed
        ))
    })
}

// ---------------------------------------------------------------- helpers

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut &[u8]) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut &[u8]) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    Ok(buf.get_u64_le())
}

fn get_i64(buf: &mut &[u8]) -> Result<i64> {
    Ok(get_u64(buf)? as i64)
}

fn write_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn read_str(buf: &mut &[u8]) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(StorageError::Corrupt("string overruns input".into()));
    }
    let s = std::str::from_utf8(&buf[..len])
        .map_err(|_| StorageError::Corrupt("invalid utf-8".into()))?
        .to_string();
    buf.advance(len);
    Ok(s)
}

fn write_schema(buf: &mut BytesMut, schema: &Schema) {
    buf.put_u16_le(schema.arity() as u16);
    for attr in schema.attributes() {
        write_str(buf, &attr.name);
        buf.put_u8(match attr.vtype {
            ValueType::Str => 0,
            ValueType::Int => 1,
        });
        buf.put_u8(match attr.role {
            AttributeRole::User => 0,
            AttributeRole::Time => 1,
            AttributeRole::Action => 2,
            AttributeRole::Dimension => 3,
            AttributeRole::Measure => 4,
        });
    }
}

fn read_schema(buf: &mut &[u8]) -> Result<Schema> {
    if buf.remaining() < 2 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    let arity = buf.get_u16_le() as usize;
    let mut attrs = Vec::with_capacity(arity);
    for _ in 0..arity {
        let name = read_str(buf)?;
        let vtype = match get_u8(buf)? {
            0 => ValueType::Str,
            1 => ValueType::Int,
            t => return Err(StorageError::Corrupt(format!("bad value type {t}"))),
        };
        let role = match get_u8(buf)? {
            0 => AttributeRole::User,
            1 => AttributeRole::Time,
            2 => AttributeRole::Action,
            3 => AttributeRole::Dimension,
            4 => AttributeRole::Measure,
            r => return Err(StorageError::Corrupt(format!("bad role {r}"))),
        };
        attrs.push(Attribute::new(name, vtype, role));
    }
    Schema::new(attrs).map_err(|e| StorageError::Corrupt(e.to_string()))
}

fn write_dict(buf: &mut BytesMut, dict: &GlobalDict) {
    buf.put_u32_le(dict.len() as u32);
    for v in dict.values() {
        write_str(buf, v);
    }
}

fn read_dict(buf: &mut &[u8]) -> Result<GlobalDict> {
    let n = get_u32(buf)? as usize;
    // Each value consumes at least its 4-byte length prefix; a larger count
    // is corruption, and guarding here prevents huge pre-allocations.
    if n > buf.remaining() / 4 {
        return Err(StorageError::Corrupt(format!("dictionary count {n} overruns input")));
    }
    let mut values: Vec<Arc<str>> = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(Arc::from(read_str(buf)?));
    }
    GlobalDict::from_sorted(values)
}

fn write_meta(buf: &mut BytesMut, meta: &ColumnMeta) {
    match meta {
        ColumnMeta::User { dict } => {
            buf.put_u8(0);
            write_dict(buf, dict);
        }
        ColumnMeta::Str { dict } => {
            buf.put_u8(1);
            write_dict(buf, dict);
        }
        ColumnMeta::Int { min, max } => {
            buf.put_u8(2);
            buf.put_u64_le(*min as u64);
            buf.put_u64_le(*max as u64);
        }
    }
}

fn read_meta(buf: &mut &[u8]) -> Result<ColumnMeta> {
    match get_u8(buf)? {
        0 => Ok(ColumnMeta::User { dict: read_dict(buf)? }),
        1 => Ok(ColumnMeta::Str { dict: read_dict(buf)? }),
        2 => {
            let min = get_i64(buf)?;
            let max = get_i64(buf)?;
            Ok(ColumnMeta::Int { min, max })
        }
        t => Err(StorageError::Corrupt(format!("bad meta tag {t}"))),
    }
}

/// The base (stats-less) fields of an index entry, shared by the v2 and v3
/// footers.
fn write_entry_base(buf: &mut BytesMut, entry: &ChunkIndexEntry) {
    buf.put_u64_le(entry.num_rows);
    buf.put_u64_le(entry.num_users);
    buf.put_u64_le(entry.time_min as u64);
    buf.put_u64_le(entry.time_max as u64);
    buf.put_u32_le(entry.action_gids.len() as u32);
    for gid in &entry.action_gids {
        buf.put_u32_le(*gid);
    }
}

fn write_column_stats(buf: &mut BytesMut, stats: &ColumnStats) {
    match stats {
        ColumnStats::User => buf.put_u8(0),
        ColumnStats::Str { distinct } => {
            buf.put_u8(1);
            buf.put_u32_le(*distinct);
        }
        ColumnStats::Int { min, max } => {
            buf.put_u8(2);
            buf.put_u64_le(*min as u64);
            buf.put_u64_le(*max as u64);
        }
    }
}

fn read_column_stats(buf: &mut &[u8]) -> Result<ColumnStats> {
    match get_u8(buf)? {
        0 => Ok(ColumnStats::User),
        1 => Ok(ColumnStats::Str { distinct: get_u32(buf)? }),
        2 => {
            let min = get_i64(buf)?;
            let max = get_i64(buf)?;
            if min > max {
                return Err(StorageError::Corrupt(format!("column stats min {min} > max {max}")));
            }
            Ok(ColumnStats::Int { min, max })
        }
        t => Err(StorageError::Corrupt(format!("bad column stats tag {t}"))),
    }
}

fn write_packed(buf: &mut BytesMut, packed: &BitPacked) {
    buf.put_u8(packed.width());
    buf.put_u64_le(packed.len() as u64);
    for w in packed.words() {
        buf.put_u64_le(*w);
    }
}

fn read_packed(buf: &mut &[u8]) -> Result<BitPacked> {
    let width = get_u8(buf)?;
    if width > 64 {
        return Err(StorageError::Corrupt(format!("bad bit width {width}")));
    }
    let len = get_u64(buf)? as usize;
    // Guard against corrupt lengths before allocating: at `width > 0`, the
    // packed words must actually be present in the input.
    let num_words = if width == 0 { 0 } else { len.div_ceil((64 / width as usize).max(1)) };
    if num_words > buf.remaining() / 8 {
        return Err(StorageError::Corrupt("bitpack words overrun input".into()));
    }
    let mut words = Vec::with_capacity(num_words);
    for _ in 0..num_words {
        words.push(buf.get_u64_le());
    }
    BitPacked::from_raw(width, len, words)
}

/// The RLE user column as a self-contained blob.
fn write_rle_blob(buf: &mut BytesMut, rle: &UserRle) {
    let (users, firsts, counts) = rle.parts();
    write_packed(buf, users);
    write_packed(buf, firsts);
    write_packed(buf, counts);
}

/// One column segment, tagged (1 = string, 2 = integer).
fn write_column_blob(buf: &mut BytesMut, col: &ChunkColumn) {
    match col {
        ChunkColumn::Str { dict, codes } => {
            buf.put_u8(1);
            buf.put_u32_le(dict.len() as u32);
            for gid in dict.global_ids() {
                buf.put_u32_le(*gid);
            }
            write_packed(buf, codes);
        }
        ChunkColumn::Int { min, max, deltas } => {
            buf.put_u8(2);
            buf.put_u64_le(*min as u64);
            buf.put_u64_le(*max as u64);
            write_packed(buf, deltas);
        }
    }
}

/// One column segment with v4 codec selection on its packed-array section:
/// the tag + dictionary / min-max header stays raw (it is a few bytes and
/// the footer parser needs nothing from it), then the bit-packed array is
/// written with whichever codec [`codec::encode_array`] picked. Returns the
/// chosen codec and the exact length the blob would have serialized to raw
/// (the v3 length), which the footer records as `uncompressed`. A blob
/// whose section stays [`Codec::Raw`] is byte-identical to its v3 form.
fn write_column_blob_v4(buf: &mut BytesMut, col: &ChunkColumn) -> (Codec, u64) {
    let (packed, header_len) = match col {
        ChunkColumn::Str { dict, codes } => {
            buf.put_u8(1);
            buf.put_u32_le(dict.len() as u32);
            for gid in dict.global_ids() {
                buf.put_u32_le(*gid);
            }
            (codes, 5 + 4 * dict.len() as u64)
        }
        ChunkColumn::Int { min, max, deltas } => {
            buf.put_u8(2);
            buf.put_u64_le(*min as u64);
            buf.put_u64_le(*max as u64);
            (deltas, 17u64)
        }
    };
    let (chosen, section) = codec::encode_array(packed);
    buf.put_slice(&section);
    (chosen, header_len + codec::raw_section_len(packed.width(), packed.len() as u64))
}

/// One tagged column segment (0 = absent, 1 = string, 2 = integer).
fn read_column(buf: &mut &[u8]) -> Result<Option<ChunkColumn>> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => {
            let n = get_u32(buf)? as usize;
            if n > buf.remaining() / 4 {
                return Err(StorageError::Corrupt(format!(
                    "chunk dictionary count {n} overruns input"
                )));
            }
            let mut gids = Vec::with_capacity(n);
            for _ in 0..n {
                gids.push(get_u32(buf)?);
            }
            let dict = ChunkDict::from_sorted(gids)?;
            let codes = read_packed(buf)?;
            Ok(Some(ChunkColumn::Str { dict, codes }))
        }
        2 => {
            let min = get_i64(buf)?;
            let max = get_i64(buf)?;
            let deltas = read_packed(buf)?;
            Ok(Some(ChunkColumn::Int { min, max, deltas }))
        }
        t => Err(StorageError::Corrupt(format!("bad column tag {t}"))),
    }
}

/// One whole chunk as a self-contained blob (the v1/v2 chunk encoding).
fn write_chunk(buf: &mut BytesMut, chunk: &Chunk) {
    write_rle_blob(buf, chunk.user_rle());
    buf.put_u16_le(chunk.columns().len() as u16);
    for col in chunk.columns() {
        match col {
            None => buf.put_u8(0),
            Some(col) => write_column_blob(buf, col),
        }
    }
}

fn read_chunk(buf: &mut &[u8], arity: usize) -> Result<Chunk> {
    let users = read_packed(buf)?;
    let firsts = read_packed(buf)?;
    let counts = read_packed(buf)?;
    let rle = UserRle::from_parts(users, firsts, counts)?;
    if buf.remaining() < 2 {
        return Err(StorageError::Corrupt("unexpected end of input".into()));
    }
    let ncols = buf.get_u16_le() as usize;
    if ncols != arity {
        return Err(StorageError::Corrupt(format!("chunk has {ncols} columns, schema {arity}")));
    }
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(read_column(buf)?);
    }
    Chunk::new(rle, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig};

    fn compressed() -> CompressedTable {
        let t = generate(&GeneratorConfig::small());
        CompressedTable::build(&t, CompressionOptions::with_chunk_size(256)).unwrap()
    }

    /// A dataset large enough that per-chunk codec selection actually picks
    /// non-raw codecs (the tiny 256-row chunks of [`compressed`] amortize no
    /// frequency table).
    fn compressed_large() -> CompressedTable {
        let t = generate(&GeneratorConfig::new(200));
        CompressedTable::build(&t, CompressionOptions::with_chunk_size(16 * 1024)).unwrap()
    }

    #[test]
    fn roundtrip_bytes_v4() {
        let c = compressed();
        let bytes = to_bytes(&c);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.num_rows(), c.num_rows());
        assert_eq!(back.chunks(), c.chunks());
        assert_eq!(back.schema(), c.schema());
        assert_eq!(back.index_entries(), c.index_entries());
        // Full decode equality.
        assert_eq!(back.decompress().unwrap().rows(), c.decompress().unwrap().rows());
    }

    #[test]
    fn roundtrip_bytes_v3() {
        let c = compressed();
        let bytes = to_bytes_v3(&c);
        assert_eq!(&bytes[4..8], 3u32.to_le_bytes());
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.num_rows(), c.num_rows());
        assert_eq!(back.chunks(), c.chunks());
        assert_eq!(back.index_entries(), c.index_entries());
        assert_eq!(back.decompress().unwrap().rows(), c.decompress().unwrap().rows());
    }

    #[test]
    fn roundtrip_bytes_v4_with_compressed_blobs() {
        // Large chunks make the codec selector actually choose non-raw
        // codecs; the round trip must still reproduce the table exactly.
        let c = compressed_large();
        let v4 = to_bytes(&c);
        let v3 = to_bytes_v3(&c);
        assert!(
            v4.len() < v3.len(),
            "v4 image ({}) should be smaller than v3 ({}) on realistic chunks",
            v4.len(),
            v3.len()
        );
        let back = from_bytes(&v4).unwrap();
        assert_eq!(back.chunks(), c.chunks());
        assert_eq!(back.decompress().unwrap().rows(), c.decompress().unwrap().rows());
    }

    #[test]
    fn roundtrip_bytes_v2() {
        let c = compressed();
        let bytes = to_bytes_v2(&c);
        assert_eq!(&bytes[4..8], 2u32.to_le_bytes());
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.num_rows(), c.num_rows());
        assert_eq!(back.chunks(), c.chunks());
        assert_eq!(back.decompress().unwrap().rows(), c.decompress().unwrap().rows());
    }

    #[test]
    fn roundtrip_bytes_v1() {
        let c = compressed();
        let bytes = to_bytes_v1(&c);
        assert_eq!(&bytes[4..8], 1u32.to_le_bytes());
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.num_rows(), c.num_rows());
        assert_eq!(back.chunks(), c.chunks());
        assert_eq!(back.decompress().unwrap().rows(), c.decompress().unwrap().rows());
    }

    #[test]
    fn v4_header_declares_version_4() {
        let bytes = to_bytes(&compressed());
        assert_eq!(&bytes[0..4], MAGIC.to_le_bytes());
        assert_eq!(&bytes[4..8], VERSION.to_le_bytes());
        assert_eq!(VERSION, 4);
        // Tail carries the magic too.
        assert_eq!(&bytes[bytes.len() - 4..], MAGIC.to_le_bytes());
    }

    #[test]
    fn roundtrip_file() {
        let c = compressed();
        let dir = std::env::temp_dir().join("cohana-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.cohana");
        write_file(&c, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(back.num_rows(), c.num_rows());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_magic() {
        for writer in [to_bytes, to_bytes_v3, to_bytes_v2, to_bytes_v1] {
            let mut bytes = writer(&compressed()).to_vec();
            bytes[0] ^= 0xFF;
            assert!(matches!(from_bytes(&bytes).unwrap_err(), StorageError::Corrupt(_)));
        }
    }

    #[test]
    fn rejects_bad_tail_magic() {
        for writer in [to_bytes, to_bytes_v3, to_bytes_v2] {
            let mut bytes = writer(&compressed()).to_vec();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            assert!(matches!(from_bytes(&bytes).unwrap_err(), StorageError::Corrupt(_)));
        }
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = to_bytes(&compressed()).to_vec();
        bytes[4] = 99;
        assert!(matches!(from_bytes(&bytes).unwrap_err(), StorageError::BadVersion(99)));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        for writer in [to_bytes, to_bytes_v3, to_bytes_v2, to_bytes_v1] {
            let bytes = writer(&compressed()).to_vec();
            // Truncating at any prefix must error, never panic.
            for cut in (0..bytes.len().min(400)).chain([bytes.len() - 1]) {
                assert!(from_bytes(&bytes[..cut]).is_err(), "cut at {cut} should fail");
            }
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        // v1 detects trailing bytes directly; the footered formats' tail
        // magic lands on the wrong bytes once anything is appended.
        for writer in [to_bytes, to_bytes_v3, to_bytes_v2, to_bytes_v1] {
            let mut bytes = writer(&compressed()).to_vec();
            bytes.push(0);
            assert!(from_bytes(&bytes).is_err());
        }
    }

    /// Byte size of one v2 footer entry.
    fn v2_entry_size(e: &ChunkIndexEntry) -> usize {
        52 + 4 * e.action_gids.len()
    }

    #[test]
    fn rejects_crafted_overflow_locations_v2() {
        // A footer whose first chunk length is near u64::MAX so that
        // `offset + len` wraps past the bound check, with the second entry
        // repaired to keep the tiling chain consistent. Must be rejected by
        // the subtraction-based bound check, never reach the slicing code.
        let c = compressed();
        assert!(c.chunks().len() >= 2);
        let bytes = to_bytes_v2(&c).to_vec();
        let tail = bytes.len() - 12;
        let footer_len = u64::from_le_bytes(bytes[tail..tail + 8].try_into().unwrap()) as usize;
        let footer_start = (tail - footer_len) as u64;
        let entries_size: usize = c.index_entries().iter().map(v2_entry_size).sum();
        let e0 = tail - entries_size;
        let e1 = e0 + v2_entry_size(&c.index_entries()[0]);
        let mut crafted = bytes.clone();
        crafted[e0 + 8..e0 + 16].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
        crafted[e1..e1 + 8].copy_from_slice(&0u64.to_le_bytes());
        crafted[e1 + 8..e1 + 16].copy_from_slice(&footer_start.to_le_bytes());
        assert!(matches!(from_bytes(&crafted), Err(StorageError::Corrupt(_))));
    }

    /// Byte size of one v3 footer entry.
    fn v3_entry_size(arity: usize, e: &ChunkIndexEntry) -> usize {
        let stats: usize = e
            .column_stats
            .iter()
            .map(|s| match s {
                ColumnStats::User => 1,
                ColumnStats::Str { .. } => 5,
                ColumnStats::Int { .. } => 17,
            })
            .sum();
        16 + 16 * arity + 36 + 4 * e.action_gids.len() + stats
    }

    #[test]
    fn rejects_crafted_overflow_locations_v3() {
        // Same attack on the v3 footer: a near-u64::MAX RLE blob length in
        // the first chunk's layout must be rejected by the subtraction-based
        // tiling check — no wrap, no huge allocation, no panic.
        let c = compressed();
        assert!(c.chunks().len() >= 2);
        let arity = c.schema().arity();
        let bytes = to_bytes_v3(&c).to_vec();
        let tail = bytes.len() - 12;
        let entries_size: usize = c.index_entries().iter().map(|e| v3_entry_size(arity, e)).sum();
        let e0 = tail - entries_size;
        let mut crafted = bytes.clone();
        // rle_len is the second u64 of the first entry.
        crafted[e0 + 8..e0 + 16].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
        assert!(matches!(from_bytes(&crafted), Err(StorageError::Corrupt(_))));
    }

    /// Byte size of one v4 footer entry: every blob record grows by a codec
    /// tag byte and an uncompressed-length u64.
    fn v4_entry_size(arity: usize, e: &ChunkIndexEntry) -> usize {
        v3_entry_size(arity, e) + 9 * (arity + 1)
    }

    /// Footer byte offset of the first chunk's entry in a v4 image with no
    /// epoch extension (entries run up to the tail).
    fn v4_first_entry_offset(c: &CompressedTable, bytes: &[u8]) -> usize {
        let arity = c.schema().arity();
        let entries_size: usize = c.index_entries().iter().map(|e| v4_entry_size(arity, e)).sum();
        bytes.len() - 12 - entries_size
    }

    #[test]
    fn rejects_crafted_overflow_locations_v4() {
        let c = compressed();
        assert!(c.chunks().len() >= 2);
        let bytes = to_bytes(&c).to_vec();
        let e0 = v4_first_entry_offset(&c, &bytes);
        let mut crafted = bytes.clone();
        // rle_len is still the second u64 of the first entry's rle record.
        crafted[e0 + 8..e0 + 16].copy_from_slice(&(u64::MAX - 7).to_le_bytes());
        assert!(matches!(from_bytes(&crafted), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn rejects_bad_codec_tags_v4() {
        let c = compressed();
        let bytes = to_bytes(&c).to_vec();
        let e0 = v4_first_entry_offset(&c, &bytes);
        // The rle record's codec tag (offset 16 within the record): an
        // unknown tag and a known-but-forbidden one must both be rejected.
        for tag in [7u8, Codec::Delta.tag()] {
            let mut crafted = bytes.clone();
            crafted[e0 + 16] = tag;
            assert!(matches!(from_bytes(&crafted), Err(StorageError::Corrupt(_))), "tag {tag}");
        }
    }

    #[test]
    fn rejects_tampered_uncompressed_length_v4() {
        let c = compressed();
        let bytes = to_bytes(&c).to_vec();
        let e0 = v4_first_entry_offset(&c, &bytes);
        // A raw blob's uncompressed length must equal its on-disk length;
        // growing it by one must fail footer validation.
        let rle_unc = u64::from_le_bytes(bytes[e0 + 17..e0 + 25].try_into().unwrap());
        let mut crafted = bytes.clone();
        crafted[e0 + 17..e0 + 25].copy_from_slice(&(rle_unc + 1).to_le_bytes());
        assert!(matches!(from_bytes(&crafted), Err(StorageError::Corrupt(_))));
    }

    #[test]
    fn rejects_tampered_uncompressed_length_on_compressed_blob_v4() {
        // Find a genuinely compressed blob through the parsed footer, then
        // nudge its uncompressed length so footer validation still passes
        // (> len, within the row bound) but the codec's own embedded
        // width/length no longer matches — the decoder must reject it.
        let c = compressed_large();
        let bytes = to_bytes(&c).to_vec();
        let footer = parse_footer_region(&bytes, 4).unwrap();
        let layouts = footer.layouts.as_ref().unwrap();
        let arity = c.schema().arity();
        let mut entry_start = v4_first_entry_offset(&c, &bytes);
        let mut target = None;
        'outer: for (ci, layout) in layouts.iter().enumerate() {
            for (j, loc) in layout.cols.iter().enumerate() {
                if loc.codec != Codec::Raw {
                    target = Some(entry_start + 25 + 25 * j);
                    break 'outer;
                }
            }
            entry_start += v4_entry_size(arity, &c.index_entries()[ci]);
        }
        let record = target.expect("large chunks must produce at least one compressed blob");
        let unc_at = record + 17;
        let unc = u64::from_le_bytes(bytes[unc_at..unc_at + 8].try_into().unwrap());
        let mut crafted = bytes.clone();
        crafted[unc_at..unc_at + 8].copy_from_slice(&(unc + 8).to_le_bytes());
        assert!(from_bytes(&crafted).is_err());
    }

    #[test]
    fn append_preserves_file_version() {
        let dir = std::env::temp_dir().join("cohana-persist-version-preserve");
        std::fs::create_dir_all(&dir).unwrap();
        let rows = generate(&GeneratorConfig::small());
        let (first, rest) = rows.rows().split_at(rows.rows().len() / 2);
        let opts = CompressionOptions::with_chunk_size(256);
        let build_table = |slice: &[cohana_activity::Tuple]| {
            let mut b = TableBuilder::new(rows.schema().clone());
            for row in slice {
                b.push(row.values().to_vec()).unwrap();
            }
            b.finish().unwrap()
        };
        let tail = build_table(rest);
        for (name, writer, expect) in
            [("v3", to_bytes_v3 as fn(&CompressedTable) -> Bytes, 3u32), ("v4", to_bytes, 4u32)]
        {
            let path = dir.join(format!("table-{name}.cohana"));
            let c = CompressedTable::build(&build_table(first), opts).unwrap();
            std::fs::write(&path, writer(&c)).unwrap();
            append(&path, &tail).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(&bytes[4..8], expect.to_le_bytes(), "{name} file changed version");
            // The grown file still decodes to the full row set.
            let back = from_bytes(&bytes).unwrap();
            assert_eq!(back.num_rows(), rows.rows().len());
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn compact_upgrades_v3_to_v4() {
        let dir = std::env::temp_dir().join("cohana-persist-compact-upgrade");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.cohana");
        let c = compressed();
        std::fs::write(&path, to_bytes_v3(&c)).unwrap();
        compact(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(&bytes[4..8], 4u32.to_le_bytes());
        assert_eq!(bytes, to_bytes(&c).to_vec());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn inspect_reports_codec_selection() {
        let dir = std::env::temp_dir().join("cohana-persist-inspect");
        std::fs::create_dir_all(&dir).unwrap();
        let c = compressed_large();
        let v3_path = dir.join("table-v3.cohana");
        let v4_path = dir.join("table-v4.cohana");
        std::fs::write(&v3_path, to_bytes_v3(&c)).unwrap();
        std::fs::write(&v4_path, to_bytes(&c)).unwrap();

        let v3 = inspect(&v3_path).unwrap();
        assert_eq!(v3.version, 3);
        assert_eq!(v3.num_rows, c.num_rows());
        assert_eq!(v3.compressed_bytes(), v3.uncompressed_bytes());
        assert_eq!(v3.codecs[1].blobs + v3.codecs[2].blobs, 0);

        let v4 = inspect(&v4_path).unwrap();
        assert_eq!(v4.version, 4);
        assert_eq!(v4.num_chunks, c.chunks().len());
        // Decoded payload matches v3's raw payload exactly; the disk
        // payload is smaller, and at least one blob chose a real codec.
        assert_eq!(v4.uncompressed_bytes(), v3.compressed_bytes());
        assert!(v4.compressed_bytes() < v3.compressed_bytes());
        assert!(v4.codecs[1].blobs + v4.codecs[2].blobs > 0);
        assert!(v4.ratio() > 1.0);
        for (a, b) in v4.columns.iter().zip(v3.columns.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.uncompressed_bytes, b.uncompressed_bytes);
            assert!(a.compressed_bytes <= a.uncompressed_bytes);
        }
        std::fs::remove_file(&v3_path).ok();
        std::fs::remove_file(&v4_path).ok();
    }

    #[test]
    fn rejects_zero_chunk_size_footer() {
        for writer in [to_bytes, to_bytes_v3, to_bytes_v2] {
            let bytes = writer(&compressed()).to_vec();
            let tail = bytes.len() - 12;
            let footer_len = u64::from_le_bytes(bytes[tail..tail + 8].try_into().unwrap()) as usize;
            let footer_start = tail - footer_len;
            let mut crafted = bytes;
            crafted[footer_start..footer_start + 8].copy_from_slice(&0u64.to_le_bytes());
            assert!(matches!(from_bytes(&crafted), Err(StorageError::Corrupt(_))));
        }
    }

    #[test]
    fn rejects_tampered_footer_index() {
        for writer in [to_bytes, to_bytes_v3, to_bytes_v2] {
            let c = compressed();
            let bytes = writer(&c).to_vec();
            // Locate the footer and flip one byte inside it; either the
            // footer parse or the recomputed-index comparison must reject
            // the image.
            let tail = bytes.len() - 12;
            let footer_len = u64::from_le_bytes(bytes[tail..tail + 8].try_into().unwrap()) as usize;
            let footer_start = tail - footer_len;
            let mut seen_reject = false;
            for pos in [footer_start + 8, footer_start + footer_len / 2, tail - 1] {
                let mut tampered = bytes.clone();
                tampered[pos] ^= 0x01;
                if from_bytes(&tampered).is_err() {
                    seen_reject = true;
                }
            }
            assert!(seen_reject, "no footer tampering detected");
        }
    }

    #[test]
    fn all_versions_decode_identically() {
        let c = compressed();
        let v2 = from_bytes(&to_bytes_v2(&c)).unwrap();
        let v3 = from_bytes(&to_bytes_v3(&c)).unwrap();
        let v4 = from_bytes(&to_bytes(&c)).unwrap();
        assert_eq!(v2.chunks(), v3.chunks());
        assert_eq!(v3.chunks(), v4.chunks());
        assert_eq!(v2.schema(), v4.schema());
        assert_eq!(v2.num_rows(), v4.num_rows());
    }
}
