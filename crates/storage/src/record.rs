//! Exact per-query I/O attribution.
//!
//! [`SourceIoStats::delta_since`] attributes I/O to a query by subtracting
//! lifetime-counter snapshots, which over-counts when two queries decode on
//! the same source concurrently: each query's window swallows the other's
//! I/O. An [`IoRecorder`] fixes the attribution at the increment site
//! instead: every thread carries at most one *active recorder* (a
//! thread-local installed with [`with_recorder`]), and every counter bump a
//! [`FileSource`](crate::FileSource) performs is credited to the recorder
//! active on the bumping thread — so each increment lands in exactly one
//! query's recorder, no matter how executions interleave.
//!
//! The executor installs one recorder per query stream: around each serial
//! chunk run, and for the whole lifetime of each parallel worker thread.
//! Threads with no active recorder (e.g. a cache-warming scan done outside
//! any query) simply credit nobody; the source's own lifetime counters are
//! bumped unconditionally either way.

use crate::source::SourceIoStats;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Monotone per-query I/O counters, credited by the storage layer while the
/// recorder is installed on the decoding thread (see [`with_recorder`]).
/// Shared across threads via `Arc`; all counters are atomic, so
/// [`IoRecorder::snapshot`] can race with live decodes.
#[derive(Debug, Default)]
pub struct IoRecorder {
    chunks_decoded: AtomicUsize,
    columns_decoded: AtomicUsize,
    bytes_read: AtomicU64,
    bytes_decompressed: AtomicU64,
    cache_evictions: AtomicU64,
}

impl IoRecorder {
    /// A fresh all-zero recorder.
    pub fn new() -> IoRecorder {
        IoRecorder::default()
    }

    /// The I/O credited so far. The gauge fields (`cache_resident_bytes`,
    /// `cache_budget_bytes`) are not per-query quantities and stay zero.
    pub fn snapshot(&self) -> SourceIoStats {
        SourceIoStats {
            chunks_decoded: self.chunks_decoded.load(Ordering::Relaxed),
            columns_decoded: self.columns_decoded.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_decompressed: self.bytes_decompressed.load(Ordering::Relaxed),
            decode: Default::default(),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_resident_bytes: 0,
            cache_budget_bytes: 0,
        }
    }

    pub(crate) fn add_chunks_decoded(&self, n: usize) {
        self.chunks_decoded.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_columns_decoded(&self, n: usize) {
        self.columns_decoded.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_read(&self, n: u64) {
        self.bytes_read.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_bytes_decompressed(&self, n: u64) {
        self.bytes_decompressed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_cache_evictions(&self, n: u64) {
        self.cache_evictions.fetch_add(n, Ordering::Relaxed);
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<Arc<IoRecorder>>> = const { RefCell::new(None) };
}

/// Run `f` with `recorder` installed as this thread's active recorder,
/// restoring whatever was active before (recorder scopes nest). Every
/// storage counter bump performed on this thread inside `f` — including by
/// code that has never heard of recorders — is credited to `recorder`.
pub fn with_recorder<T>(recorder: &Arc<IoRecorder>, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<Arc<IoRecorder>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            ACTIVE.with(|slot| *slot.borrow_mut() = self.0.take());
        }
    }
    let previous = ACTIVE.with(|slot| slot.borrow_mut().replace(recorder.clone()));
    let _restore = Restore(previous);
    f()
}

/// Credit the thread's active recorder, if one is installed. Called by the
/// storage layer next to each lifetime-counter bump.
pub(crate) fn credit(f: impl FnOnce(&IoRecorder)) {
    ACTIVE.with(|slot| {
        if let Some(recorder) = slot.borrow().as_deref() {
            f(recorder);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_only_inside_scope() {
        let rec = Arc::new(IoRecorder::new());
        credit(|r| r.add_bytes_read(7)); // no recorder installed: dropped
        with_recorder(&rec, || {
            credit(|r| r.add_bytes_read(5));
            credit(|r| r.add_chunks_decoded(1));
        });
        credit(|r| r.add_bytes_read(100)); // scope ended: dropped
        let snap = rec.snapshot();
        assert_eq!(snap.bytes_read, 5);
        assert_eq!(snap.chunks_decoded, 1);
        assert_eq!(snap.cache_evictions, 0);
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = Arc::new(IoRecorder::new());
        let inner = Arc::new(IoRecorder::new());
        with_recorder(&outer, || {
            credit(|r| r.add_columns_decoded(1));
            with_recorder(&inner, || credit(|r| r.add_columns_decoded(10)));
            credit(|r| r.add_columns_decoded(2));
        });
        assert_eq!(outer.snapshot().columns_decoded, 3);
        assert_eq!(inner.snapshot().columns_decoded, 10);
    }

    #[test]
    fn recorders_are_per_thread() {
        let rec = Arc::new(IoRecorder::new());
        with_recorder(&rec, || {
            // A thread spawned inside the scope does NOT inherit it.
            std::thread::spawn(|| credit(|r| r.add_bytes_read(999))).join().unwrap();
            credit(|r| r.add_bytes_read(1));
        });
        assert_eq!(rec.snapshot().bytes_read, 1);
    }
}
