//! Run-length encoding of the user column (§4.1).
//!
//! Within a chunk, the user column is a sequence of runs because the table
//! is sorted by `(Au, At, Ae)`. Each run is a triple `(u, f, n)`: the user's
//! global id, the row position of the user's first tuple in the chunk, and
//! the number of tuples. The modified TableScan iterates these triples to
//! implement `GetNextUser` and `SkipCurUser`.

use crate::bitpack::BitPacked;

/// One `(u, f, n)` triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserRun {
    /// Global id of the user in the user column's global dictionary.
    pub user_gid: u32,
    /// Row index of the user's first tuple within the chunk.
    pub first: u32,
    /// Number of tuples for this user.
    pub count: u32,
}

/// The RLE-compressed user column of one chunk. The three triple components
/// are stored as separate bit-packed arrays so each is packed at its own
/// minimal width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserRle {
    users: BitPacked,
    firsts: BitPacked,
    counts: BitPacked,
}

impl UserRle {
    /// Build from the per-row user global ids of a chunk. Requires the rows
    /// to be user-clustered (guaranteed by the primary-key sort); panics in
    /// debug builds otherwise.
    pub fn from_rows(user_gids: &[u32]) -> Self {
        let mut users = Vec::new();
        let mut firsts = Vec::new();
        let mut counts = Vec::new();
        let mut i = 0usize;
        while i < user_gids.len() {
            let gid = user_gids[i];
            let start = i;
            while i < user_gids.len() && user_gids[i] == gid {
                i += 1;
            }
            debug_assert!(
                !users.contains(&(gid as u64)),
                "user {gid} appears in two separate runs; input not clustered"
            );
            users.push(gid as u64);
            firsts.push(start as u64);
            counts.push((i - start) as u64);
        }
        UserRle {
            users: BitPacked::from_slice(&users),
            firsts: BitPacked::from_slice(&firsts),
            counts: BitPacked::from_slice(&counts),
        }
    }

    /// Rebuild from raw parts (persistence path).
    pub(crate) fn from_parts(
        users: BitPacked,
        firsts: BitPacked,
        counts: BitPacked,
    ) -> crate::Result<Self> {
        if users.len() != firsts.len() || users.len() != counts.len() {
            return Err(crate::StorageError::Corrupt("user RLE arrays disagree in length".into()));
        }
        Ok(UserRle { users, firsts, counts })
    }

    /// Number of runs == number of distinct users in the chunk.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Fetch the `i`-th run.
    #[inline]
    pub fn run(&self, i: usize) -> UserRun {
        UserRun {
            user_gid: self.users.get(i) as u32,
            first: self.firsts.get(i) as u32,
            count: self.counts.get(i) as u32,
        }
    }

    /// Iterate all runs in order.
    pub fn runs(&self) -> impl Iterator<Item = UserRun> + '_ {
        (0..self.num_users()).map(move |i| self.run(i))
    }

    /// Total number of rows covered by the runs.
    pub fn num_rows(&self) -> usize {
        self.runs().map(|r| r.count as usize).sum()
    }

    /// The user global id owning a given row (linear in runs; used only by
    /// tests and the decoder, never on the query hot path).
    pub fn user_at_row(&self, row: usize) -> Option<u32> {
        self.runs()
            .find(|r| (r.first as usize..r.first as usize + r.count as usize).contains(&row))
            .map(|r| r.user_gid)
    }

    /// Re-base the user gids onto a merged dictionary: every gid is replaced
    /// by `remap[gid]` (the decode path for chunks written under an older
    /// dictionary epoch). Run boundaries are untouched; only the gid array
    /// is re-packed, since the merged gids may need a wider bit width.
    pub(crate) fn remap_users(&self, remap: &[u32]) -> crate::Result<UserRle> {
        let mut users = Vec::with_capacity(self.users.len());
        for i in 0..self.users.len() {
            let gid = self.users.get(i) as usize;
            let mapped = remap.get(gid).ok_or_else(|| {
                crate::StorageError::Corrupt(format!(
                    "user gid {gid} outside its dictionary epoch (size {})",
                    remap.len()
                ))
            })?;
            users.push(*mapped as u64);
        }
        Ok(UserRle {
            users: BitPacked::from_slice(&users),
            firsts: self.firsts.clone(),
            counts: self.counts.clone(),
        })
    }

    /// Bytes consumed by the packed arrays.
    pub fn packed_bytes(&self) -> usize {
        self.users.packed_bytes() + self.firsts.packed_bytes() + self.counts.packed_bytes()
    }

    /// Access raw arrays for persistence.
    pub(crate) fn parts(&self) -> (&BitPacked, &BitPacked, &BitPacked) {
        (&self.users, &self.firsts, &self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_runs() {
        let rle = UserRle::from_rows(&[5, 5, 5, 2, 2, 9]);
        assert_eq!(rle.num_users(), 3);
        assert_eq!(rle.run(0), UserRun { user_gid: 5, first: 0, count: 3 });
        assert_eq!(rle.run(1), UserRun { user_gid: 2, first: 3, count: 2 });
        assert_eq!(rle.run(2), UserRun { user_gid: 9, first: 5, count: 1 });
        assert_eq!(rle.num_rows(), 6);
    }

    #[test]
    fn user_at_row() {
        let rle = UserRle::from_rows(&[5, 5, 2]);
        assert_eq!(rle.user_at_row(0), Some(5));
        assert_eq!(rle.user_at_row(1), Some(5));
        assert_eq!(rle.user_at_row(2), Some(2));
        assert_eq!(rle.user_at_row(3), None);
    }

    #[test]
    fn empty() {
        let rle = UserRle::from_rows(&[]);
        assert_eq!(rle.num_users(), 0);
        assert_eq!(rle.num_rows(), 0);
    }

    proptest! {
        #[test]
        fn prop_runs_cover_rows(run_lens in proptest::collection::vec(1usize..6, 1..40)) {
            // Build a clustered row sequence with increasing gids.
            let mut rows = Vec::new();
            for (gid, len) in run_lens.iter().enumerate() {
                rows.extend(std::iter::repeat_n(gid as u32, *len));
            }
            let rle = UserRle::from_rows(&rows);
            prop_assert_eq!(rle.num_users(), run_lens.len());
            prop_assert_eq!(rle.num_rows(), rows.len());
            // Runs are contiguous and ordered.
            let mut expected_first = 0u32;
            for (i, r) in rle.runs().enumerate() {
                prop_assert_eq!(r.first, expected_first);
                prop_assert_eq!(r.count as usize, run_lens[i]);
                expected_first += r.count;
            }
        }
    }
}
