//! Sharded tables: one logical table partitioned by user-id range into many
//! shard files under a single manifest.
//!
//! The paper's one-chunk-per-user clustering (§4.1) is a *per-file*
//! invariant, which makes range sharding by user id composition-friendly:
//! every user's tuples live in exactly one shard (the range owner), every
//! shard is an ordinary v3/v4 file preserving the invariant internally, and
//! the concatenation of all shards' chunks is itself a valid chunk sequence
//! for the executor — shards are just more chunks to prune, scan, and steal.
//!
//! A sharded table is a **directory** holding:
//!
//! * `MANIFEST` — the shard map: the user-id range boundaries, one file name
//!   per shard, and any pending deletion tombstones. Rewritten atomically
//!   (temp file + rename) so readers always see a complete map;
//! * one `shard-NNNN.cohana` file per shard — a plain
//!   [`persist`] file, individually appendable and
//!   compactable;
//! * transient `*.lock` files — single-writer locks taken around any shard
//!   mutation, so concurrent ingests (or an ingest racing background
//!   compaction) never interleave writes to one file.
//!
//! What sharding buys, relative to one monolithic file:
//!
//! * **parallel ingest** — [`append_sharded`] routes a batch by user range
//!   and appends all touched shards concurrently, each under its own lock;
//! * **independent maintenance** — a shard whose dead-byte ratio crossed the
//!   compaction threshold is rewritten alone ([`compact_shard`]), while
//!   queries keep streaming from every other shard;
//! * **bounded rewrites for deletion** — [`delete_users`] (GDPR-style
//!   retention) rewrites only the shards owning the tombstoned users, with
//!   the tombstones persisted in the manifest first so a crash mid-rewrite
//!   is recoverable ([`apply_pending_tombstones`]).
//!
//! [`ShardedSource`] opens the whole table for queries: it merges the shard
//! dictionaries into one unified [`TableMeta`], re-bases every shard
//! [`FileSource`] into that space (gid overlays applied at decode time), and
//! concatenates their chunks behind the ordinary
//! [`ChunkSource`] trait. All shards share one
//! byte-budgeted segment cache, so the memory bound is per table, not per
//! shard.

use crate::dict::GlobalDict;
use crate::persist::{self, AppendStats, CompactStats};
use crate::source::{shared_cache, ChunkIndexEntry, ChunkRef, ChunkSource, SourceIoStats};
use crate::source::{FileSource, DEFAULT_CACHE_BUDGET};
use crate::table::{ColumnMeta, CompressedTable, TableMeta};
use crate::{Result, StorageError};
use bytes::{Buf, BufMut, BytesMut};
use cohana_activity::ActivityTable;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Magic number of a shard manifest ("CSHM").
const MANIFEST_MAGIC: u32 = 0x4353_484D;
/// Current manifest format version.
const MANIFEST_VERSION: u32 = 1;
/// File name of the manifest inside a sharded-table directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// How long a writer waits for a shard's single-writer lock before giving
/// up with [`StorageError::Busy`].
pub const LOCK_TIMEOUT: Duration = Duration::from_secs(10);

// ------------------------------------------------------------- manifest

/// The shard map of one sharded table: `boundaries.len() + 1` shards, where
/// shard `i` owns the user-id range `[boundaries[i-1], boundaries[i])` (the
/// first shard is unbounded below, the last unbounded above; ranges compare
/// lexicographically, matching the storage layer's sorted user
/// dictionaries). Plus any pending deletion tombstones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardManifest {
    /// Strictly increasing range split points (one fewer than shards).
    boundaries: Vec<String>,
    /// Shard file names, relative to the manifest's directory.
    files: Vec<String>,
    /// Users whose deletion was requested but whose shard rewrites have not
    /// all completed (see [`delete_users`]). Sorted, deduplicated.
    tombstones: Vec<String>,
}

impl ShardManifest {
    fn new(boundaries: Vec<String>, files: Vec<String>) -> Result<Self> {
        let manifest = ShardManifest { boundaries, files, tombstones: Vec::new() };
        manifest.validate()?;
        Ok(manifest)
    }

    fn validate(&self) -> Result<()> {
        if self.files.is_empty() {
            return Err(StorageError::Invalid("manifest names no shard files".into()));
        }
        if self.files.len() != self.boundaries.len() + 1 {
            return Err(StorageError::Corrupt(format!(
                "manifest has {} shard files but {} boundaries (want boundaries + 1 files)",
                self.files.len(),
                self.boundaries.len()
            )));
        }
        if !self.boundaries.windows(2).all(|w| w[0] < w[1]) {
            return Err(StorageError::Corrupt(
                "manifest boundaries are not strictly increasing".into(),
            ));
        }
        for name in &self.files {
            if name.is_empty()
                || name.contains('/')
                || name.contains('\\')
                || name == "."
                || name == ".."
            {
                return Err(StorageError::Corrupt(format!(
                    "manifest shard file name {name:?} is not a plain file name"
                )));
            }
        }
        Ok(())
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.files.len()
    }

    /// The range split points (one fewer than shards).
    pub fn boundaries(&self) -> &[String] {
        &self.boundaries
    }

    /// Shard file names, relative to the manifest's directory.
    pub fn files(&self) -> &[String] {
        &self.files
    }

    /// Users whose deletion is pending (persisted intent; normally empty).
    pub fn tombstones(&self) -> &[String] {
        &self.tombstones
    }

    /// The shard owning a user id: the unique range containing it.
    pub fn route(&self, user: &str) -> usize {
        self.boundaries.partition_point(|b| b.as_str() <= user)
    }

    /// Absolute path of shard `i` given the manifest's directory.
    pub fn shard_path(&self, dir: &Path, i: usize) -> PathBuf {
        dir.join(&self.files[i])
    }

    fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_u32_le(MANIFEST_MAGIC);
        buf.put_u32_le(MANIFEST_VERSION);
        let put_str = |buf: &mut BytesMut, s: &str| {
            buf.put_u32_le(s.len() as u32);
            buf.put_slice(s.as_bytes());
        };
        buf.put_u32_le(self.files.len() as u32);
        for b in &self.boundaries {
            put_str(&mut buf, b);
        }
        for f in &self.files {
            put_str(&mut buf, f);
        }
        buf.put_u32_le(self.tombstones.len() as u32);
        for t in &self.tombstones {
            put_str(&mut buf, t);
        }
        buf.put_u32_le(MANIFEST_MAGIC);
        buf.to_vec()
    }

    fn decode(data: &[u8]) -> Result<Self> {
        let mut cur = data;
        let need = |cur: &&[u8], n: usize| -> Result<()> {
            if cur.len() < n {
                Err(StorageError::Corrupt("manifest truncated".into()))
            } else {
                Ok(())
            }
        };
        let get_u32 = |cur: &mut &[u8]| -> Result<u32> {
            need(cur, 4)?;
            Ok(cur.get_u32_le())
        };
        let get_str = |cur: &mut &[u8]| -> Result<String> {
            let len = get_u32(cur)? as usize;
            need(cur, len)?;
            let s = std::str::from_utf8(&cur[..len])
                .map_err(|_| StorageError::Corrupt("manifest string is not UTF-8".into()))?
                .to_string();
            cur.advance(len);
            Ok(s)
        };
        let magic = get_u32(&mut cur)?;
        if magic != MANIFEST_MAGIC {
            return Err(StorageError::Corrupt(format!("bad manifest magic {magic:#x}")));
        }
        let version = get_u32(&mut cur)?;
        if version != MANIFEST_VERSION {
            return Err(StorageError::BadVersion(version));
        }
        let shards = get_u32(&mut cur)? as usize;
        if shards == 0 || shards > 1 << 20 {
            return Err(StorageError::Corrupt(format!("implausible shard count {shards}")));
        }
        let mut boundaries = Vec::with_capacity(shards.saturating_sub(1));
        for _ in 0..shards - 1 {
            boundaries.push(get_str(&mut cur)?);
        }
        let mut files = Vec::with_capacity(shards);
        for _ in 0..shards {
            files.push(get_str(&mut cur)?);
        }
        let ntomb = get_u32(&mut cur)? as usize;
        let mut tombstones = Vec::with_capacity(ntomb.min(1 << 16));
        for _ in 0..ntomb {
            tombstones.push(get_str(&mut cur)?);
        }
        let tail = get_u32(&mut cur)?;
        if tail != MANIFEST_MAGIC {
            return Err(StorageError::Corrupt(format!("bad manifest tail magic {tail:#x}")));
        }
        let manifest = ShardManifest { boundaries, files, tombstones };
        manifest.validate()?;
        Ok(manifest)
    }
}

/// Whether a path names a sharded table: a directory containing a
/// [`MANIFEST_FILE`], or the manifest file itself (sniffed by magic).
pub fn is_sharded(path: &Path) -> bool {
    let manifest = if path.is_dir() { path.join(MANIFEST_FILE) } else { path.to_path_buf() };
    let mut head = [0u8; 4];
    match std::fs::File::open(&manifest) {
        Ok(mut f) => {
            use std::io::Read;
            f.read_exact(&mut head).is_ok() && u32::from_le_bytes(head) == MANIFEST_MAGIC
        }
        Err(_) => false,
    }
}

/// Resolve a user-facing path (the table directory or the manifest file
/// itself) to the manifest file path.
pub fn manifest_path(path: &Path) -> PathBuf {
    if path.is_dir() {
        path.join(MANIFEST_FILE)
    } else {
        path.to_path_buf()
    }
}

/// Read and validate a shard manifest (accepts the directory or the
/// manifest file path).
pub fn read_manifest(path: &Path) -> Result<ShardManifest> {
    let data = std::fs::read(manifest_path(path))?;
    ShardManifest::decode(&data)
}

/// Atomically (re)write a manifest: serialize to a sibling temp file, then
/// rename over the target, so a reader never observes a partial map.
pub fn write_manifest(path: &Path, manifest: &ShardManifest) -> Result<()> {
    manifest.validate()?;
    let target = manifest_path(path);
    let mut tmp = target.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, manifest.encode())?;
    std::fs::rename(&tmp, &target)?;
    Ok(())
}

// ------------------------------------------------------------ shard lock

/// A held single-writer lock on one shard file, backed by an adjacent
/// `.lock` file created with `create_new` (atomic on every platform the
/// engine targets). Dropped (or [`ShardLock::release`]d), the lock file is
/// removed. The file holds the owning pid for post-crash diagnosis.
#[derive(Debug)]
pub struct ShardLock {
    path: PathBuf,
}

impl ShardLock {
    /// Lock file path guarding `shard_path`.
    fn lock_path(shard_path: &Path) -> PathBuf {
        let mut p = shard_path.as_os_str().to_os_string();
        p.push(".lock");
        PathBuf::from(p)
    }

    /// Acquire the single-writer lock for a shard file, waiting up to
    /// `timeout` for a concurrent holder to release it.
    pub fn acquire(shard_path: &Path, timeout: Duration) -> Result<ShardLock> {
        let path = Self::lock_path(shard_path);
        let deadline = std::time::Instant::now() + timeout;
        loop {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    use std::io::Write;
                    let _ = writeln!(f, "{}", std::process::id());
                    return Ok(ShardLock { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    if std::time::Instant::now() >= deadline {
                        return Err(StorageError::Busy(format!(
                            "shard lock {} held by another writer (remove the file if its \
                             holder is gone)",
                            path.display()
                        )));
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Release the lock now (Drop does the same).
    pub fn release(self) {}
}

impl Drop for ShardLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

// ------------------------------------------------------------- creation

/// Split an activity table's rows into per-shard tables along the manifest
/// boundaries. Rows are user-sorted and routing is monotone in the user id,
/// so each shard's slice is contiguous and stays primary-key sorted.
fn split_by_shard(manifest: &ShardManifest, table: &ActivityTable) -> Vec<Option<ActivityTable>> {
    let mut parts: Vec<Option<ActivityTable>> = (0..manifest.num_shards()).map(|_| None).collect();
    if table.is_empty() {
        return parts;
    }
    let user_idx = table.schema().user_idx();
    let rows = table.rows();
    let mut start = 0usize;
    while start < rows.len() {
        let user = rows[start].get(user_idx).as_str().expect("user is a string");
        let shard = manifest.route(user);
        // Extend the slice while rows keep routing to the same shard.
        let mut end = start + 1;
        while end < rows.len() {
            let u = rows[end].get(user_idx).as_str().expect("user is a string");
            if manifest.route(u) != shard {
                break;
            }
            end += 1;
        }
        let part =
            ActivityTable::from_sorted_rows(table.schema().clone(), rows[start..end].to_vec())
                .expect("a contiguous slice of a sorted table is sorted");
        parts[shard] = Some(part);
        start = end;
    }
    parts
}

/// Create a sharded table from an activity table: choose up to
/// `shards - 1` user-id boundaries that split the distinct users into
/// near-equal groups, write one v4 shard file per non-degenerate range, and
/// write the manifest last (no manifest, no table — a crash mid-create
/// leaves only unreferenced files). Returns the manifest.
///
/// Fewer shards than requested are created when the table has fewer
/// distinct users than `shards`.
pub fn create_sharded(
    dir: &Path,
    table: &ActivityTable,
    shards: usize,
    options: crate::table::CompressionOptions,
) -> Result<ShardManifest> {
    if shards == 0 {
        return Err(StorageError::Invalid("a sharded table needs at least one shard".into()));
    }
    if table.is_empty() {
        return Err(StorageError::Invalid(
            "cannot derive shard boundaries from an empty table; ingest into a single-file \
             table first"
                .into(),
        ));
    }
    std::fs::create_dir_all(dir)?;
    let user_idx = table.schema().user_idx();
    let users: Vec<&str> = table
        .user_blocks()
        .map(|b| table.rows()[b.start].get(user_idx).as_str().expect("user is a string"))
        .collect();
    let mut boundaries: Vec<String> =
        (1..shards).map(|i| users[i * users.len() / shards].to_string()).collect();
    boundaries.dedup();
    boundaries.retain(|b| b.as_str() > users[0]);

    let files: Vec<String> =
        (0..boundaries.len() + 1).map(|i| format!("shard-{i:04}.cohana")).collect();
    let manifest = ShardManifest::new(boundaries, files)?;

    let parts = split_by_shard(&manifest, table);
    std::thread::scope(|scope| -> Result<()> {
        let mut handles = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let path = manifest.shard_path(dir, i);
            handles.push(scope.spawn(move || -> Result<()> {
                let empty;
                let part: &ActivityTable = match part {
                    Some(p) => p,
                    None => {
                        empty = ActivityTable::from_sorted_rows(table.schema().clone(), Vec::new())
                            .expect("empty table is trivially sorted");
                        &empty
                    }
                };
                let compressed = CompressedTable::build(part, options)?;
                persist::write_file(&compressed, &path)
            }));
        }
        for h in handles {
            h.join().expect("shard build thread panicked")?;
        }
        Ok(())
    })?;

    write_manifest(dir, &manifest)?;
    Ok(manifest)
}

// -------------------------------------------------------------- appends

/// What one [`append_sharded`] did, per shard and in aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardedAppendStats {
    /// `(shard index, that shard's append stats)` for every shard the batch
    /// touched.
    pub per_shard: Vec<(usize, AppendStats)>,
}

impl ShardedAppendStats {
    /// Sum the per-shard stats into one [`AppendStats`] (chunk counts are
    /// summed across shards; `dead_bytes` / `file_bytes` cover only the
    /// touched shards).
    pub fn total(&self) -> AppendStats {
        let mut total = AppendStats::default();
        for (_, s) in &self.per_shard {
            total.rows_appended += s.rows_appended;
            total.chunks_before += s.chunks_before;
            total.chunks_after += s.chunks_after;
            total.chunks_rewritten += s.chunks_rewritten;
            total.bytes_appended += s.bytes_appended;
            total.dead_bytes += s.dead_bytes;
            total.file_bytes += s.file_bytes;
        }
        total
    }

    /// Shards the batch touched.
    pub fn shards_touched(&self) -> usize {
        self.per_shard.len()
    }
}

/// Append a batch to a sharded table: route each row to its range-owning
/// shard, then run every touched shard's [`persist::append`] **in
/// parallel**, each under that shard's single-writer [`ShardLock`]. The
/// manifest is not modified (boundaries are immutable after creation), so
/// concurrent readers are unaffected until they reopen.
pub fn append_sharded(path: &Path, batch: &ActivityTable) -> Result<ShardedAppendStats> {
    let manifest_file = manifest_path(path);
    let dir = manifest_file.parent().unwrap_or(Path::new(".")).to_path_buf();
    let manifest = read_manifest(&manifest_file)?;
    let parts = split_by_shard(&manifest, batch);

    let results = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, part) in parts.iter().enumerate() {
            let Some(part) = part else { continue };
            let shard_path = manifest.shard_path(&dir, i);
            handles.push((
                i,
                scope.spawn(move || -> Result<AppendStats> {
                    let _lock = ShardLock::acquire(&shard_path, LOCK_TIMEOUT)?;
                    persist::append(&shard_path, part)
                }),
            ));
        }
        handles
            .into_iter()
            .map(|(i, h)| h.join().expect("shard append thread panicked").map(|s| (i, s)))
            .collect::<Result<Vec<_>>>()
    })?;

    Ok(ShardedAppendStats { per_shard: results })
}

// ----------------------------------------------------------- maintenance

/// Compact one shard of a sharded table under its single-writer lock:
/// [`persist::compact`]'s temp-file + rename, so open readers keep their
/// pre-compact snapshot through the old inode.
pub fn compact_shard(path: &Path, shard: usize) -> Result<CompactStats> {
    let manifest_file = manifest_path(path);
    let dir = manifest_file.parent().unwrap_or(Path::new(".")).to_path_buf();
    let manifest = read_manifest(&manifest_file)?;
    if shard >= manifest.num_shards() {
        return Err(StorageError::OutOfBounds {
            what: "shard",
            index: shard,
            len: manifest.num_shards(),
        });
    }
    let shard_path = manifest.shard_path(&dir, shard);
    let _lock = ShardLock::acquire(&shard_path, LOCK_TIMEOUT)?;
    persist::compact(&shard_path)
}

/// Space accounting of every shard, cheapest-possible (one footer parse per
/// shard). Index `i` describes shard `i`.
pub fn shard_space_stats(path: &Path) -> Result<Vec<persist::FileSpaceStats>> {
    let manifest_file = manifest_path(path);
    let dir = manifest_file.parent().unwrap_or(Path::new(".")).to_path_buf();
    let manifest = read_manifest(&manifest_file)?;
    (0..manifest.num_shards())
        .map(|i| persist::file_space_stats(&manifest.shard_path(&dir, i)))
        .collect()
}

// -------------------------------------------------------------- deletion

/// What a deletion pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeleteStats {
    /// Users whose tuples were actually found and removed.
    pub users_deleted: usize,
    /// Tuples removed.
    pub rows_deleted: usize,
    /// Shards rewritten.
    pub shards_rewritten: usize,
    /// On-disk bytes reclaimed by the rewrites.
    pub reclaimed_bytes: u64,
}

/// Delete every tuple of the given users from a sharded table (GDPR-style
/// retention), in two durable steps:
///
/// 1. the users are added to the manifest's **tombstones** and the manifest
///    is atomically rewritten — the intent is now durable;
/// 2. [`apply_pending_tombstones`] rewrites each affected shard without the
///    tombstoned users (temp file + rename, under the shard lock), then
///    clears the tombstones from the manifest.
///
/// A crash between the steps (or mid-step-2) leaves the tombstones in the
/// manifest; the next [`apply_pending_tombstones`] — run on every open and
/// every maintenance pass — completes the deletion. Readers that opened
/// before the rewrite keep their snapshot (old inodes); reopening sees the
/// users gone.
pub fn delete_users(path: &Path, users: &[&str]) -> Result<DeleteStats> {
    let manifest_file = manifest_path(path);
    let mut manifest = read_manifest(&manifest_file)?;
    let mut set: BTreeSet<String> = manifest.tombstones.iter().cloned().collect();
    set.extend(users.iter().map(|u| u.to_string()));
    manifest.tombstones = set.into_iter().collect();
    write_manifest(&manifest_file, &manifest)?;
    apply_pending_tombstones(&manifest_file)
}

/// Apply any tombstones recorded in the manifest: rewrite each shard owning
/// a tombstoned user with that user's tuples dropped, then clear the
/// tombstones. Idempotent and crash-recoverable — safe to call on every
/// open. Returns what was removed (all zeros when no tombstones were
/// pending).
pub fn apply_pending_tombstones(path: &Path) -> Result<DeleteStats> {
    let manifest_file = manifest_path(path);
    let dir = manifest_file.parent().unwrap_or(Path::new(".")).to_path_buf();
    let mut manifest = read_manifest(&manifest_file)?;
    if manifest.tombstones.is_empty() {
        return Ok(DeleteStats::default());
    }

    // Group tombstones by owning shard.
    let mut by_shard: Vec<Vec<&str>> = (0..manifest.num_shards()).map(|_| Vec::new()).collect();
    for t in &manifest.tombstones {
        by_shard[manifest.route(t)].push(t.as_str());
    }

    let mut stats = DeleteStats::default();
    for (i, victims) in by_shard.iter().enumerate() {
        if victims.is_empty() {
            continue;
        }
        let shard_path = manifest.shard_path(&dir, i);
        let _lock = ShardLock::acquire(&shard_path, LOCK_TIMEOUT)?;
        let bytes_before = std::fs::metadata(&shard_path)?.len();
        let table = persist::read_file(&shard_path)?;
        let rows = table.decompress()?;
        let user_idx = rows.schema().user_idx();
        let victim_set: BTreeSet<&str> = victims.iter().copied().collect();
        let mut deleted_users: BTreeSet<&str> = BTreeSet::new();
        let mut kept = Vec::with_capacity(rows.num_rows());
        for row in rows.rows() {
            let user = row.get(user_idx).as_str().expect("user is a string");
            if victim_set.contains(user) {
                deleted_users.insert(user);
                stats.rows_deleted += 1;
            } else {
                kept.push(row.clone());
            }
        }
        if deleted_users.is_empty() {
            continue; // Nothing of these users in this shard: no rewrite.
        }
        stats.users_deleted += deleted_users.len();
        let filtered = ActivityTable::from_sorted_rows(rows.schema().clone(), kept)
            .expect("dropping whole users keeps a sorted table sorted");
        let rebuilt = CompressedTable::build(&filtered, table.options())?;
        let mut tmp = shard_path.as_os_str().to_os_string();
        tmp.push(".delete-tmp");
        let tmp = PathBuf::from(tmp);
        persist::write_file(&rebuilt, &tmp)?;
        std::fs::rename(&tmp, &shard_path)?;
        stats.shards_rewritten += 1;
        let bytes_after = std::fs::metadata(&shard_path)?.len();
        stats.reclaimed_bytes += bytes_before.saturating_sub(bytes_after);
    }

    manifest.tombstones.clear();
    write_manifest(&manifest_file, &manifest)?;
    Ok(stats)
}

// --------------------------------------------------------- sharded source

/// All shards of a sharded table behind one [`ChunkSource`]: the chunks of
/// shard 0, then shard 1, and so on. Opening merges every shard's global
/// dictionaries into one unified [`TableMeta`] and re-bases each shard
/// [`FileSource`] into that space (via an internal re-base step), so the
/// executor plans, prunes, and decodes exactly as it would against a single
/// file — shards are just more chunks. All shards share one byte-budgeted
/// segment cache.
pub struct ShardedSource {
    manifest: ShardManifest,
    meta: TableMeta,
    shards: Vec<FileSource>,
    /// Global chunk index → `(shard, chunk-within-shard)`.
    chunk_map: Vec<(u32, u32)>,
}

impl ShardedSource {
    /// Open a sharded table (directory or manifest path) with the default
    /// cache budget.
    pub fn open(path: &Path) -> Result<ShardedSource> {
        Self::open_with_budget(path, DEFAULT_CACHE_BUDGET)
    }

    /// Open with an explicit shared segment-cache byte budget (one budget
    /// across all shards).
    pub fn open_with_budget(path: &Path, cache_budget: usize) -> Result<ShardedSource> {
        let manifest_file = manifest_path(path);
        let dir = manifest_file.parent().unwrap_or(Path::new(".")).to_path_buf();
        let manifest = read_manifest(&manifest_file)?;
        let cache = shared_cache(cache_budget);
        let mut shards: Vec<FileSource> = (0..manifest.num_shards())
            .map(|i| {
                FileSource::open_shared(&manifest.shard_path(&dir, i), cache.clone(), i as u32)
            })
            .collect::<Result<_>>()?;

        let meta = merged_meta(&shards)?;
        for shard in &mut shards {
            let overlay = overlay_for_shard(&meta, shard.table_meta())?;
            shard.rebase(meta.clone(), overlay)?;
        }

        let mut chunk_map = Vec::new();
        for (i, shard) in shards.iter().enumerate() {
            for c in 0..shard.num_chunks() {
                chunk_map.push((i as u32, c as u32));
            }
        }
        Ok(ShardedSource { manifest, meta, shards, chunk_map })
    }

    /// The manifest this source opened against (its snapshot of the shard
    /// map).
    pub fn manifest(&self) -> &ShardManifest {
        &self.manifest
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// One shard's file source (re-based into the unified dictionary
    /// space), for per-shard diagnostics.
    pub fn shard(&self, i: usize) -> &FileSource {
        &self.shards[i]
    }

    /// Which shard serves a global chunk index.
    pub fn shard_of_chunk(&self, idx: usize) -> usize {
        self.chunk_map[idx].0 as usize
    }
}

impl std::fmt::Debug for ShardedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSource")
            .field("shards", &self.shards.len())
            .field("chunks", &self.chunk_map.len())
            .field("rows", &self.meta.num_rows())
            .finish()
    }
}

/// Merge per-shard table metadata into one unified [`TableMeta`]:
/// dictionary attributes take the union dictionary (sorted, deduplicated),
/// integer attributes the union range over non-empty shards, and the row
/// count the sum. The schemas and chunk sizes must agree.
fn merged_meta(shards: &[FileSource]) -> Result<TableMeta> {
    let first = shards
        .first()
        .ok_or_else(|| StorageError::Invalid("a sharded table needs at least one shard".into()))?;
    let schema = first.table_meta().schema().clone();
    let options = first.table_meta().options();
    for s in shards {
        if s.table_meta().schema() != &schema {
            return Err(StorageError::Corrupt("shards disagree on the table schema".into()));
        }
    }
    let num_rows: usize = shards.iter().map(|s| s.table_meta().num_rows()).sum();
    let metas: Vec<ColumnMeta> = (0..schema.arity())
        .map(|attr| -> Result<ColumnMeta> {
            match first.table_meta().meta(attr) {
                ColumnMeta::User { .. } | ColumnMeta::Str { .. } => {
                    let mut values: Vec<&str> = Vec::new();
                    for s in shards {
                        let dict = s.table_meta().global_dict(attr).ok_or_else(|| {
                            StorageError::Corrupt("shards disagree on column encodings".into())
                        })?;
                        values.extend(dict.values().iter().map(|v| v.as_ref()));
                    }
                    let dict = GlobalDict::build(values);
                    Ok(match first.table_meta().meta(attr) {
                        ColumnMeta::User { .. } => ColumnMeta::User { dict },
                        _ => ColumnMeta::Str { dict },
                    })
                }
                ColumnMeta::Int { .. } => {
                    let mut range: Option<(i64, i64)> = None;
                    for s in shards {
                        if s.table_meta().num_rows() == 0 {
                            continue; // An empty shard's (0,0) range is a placeholder.
                        }
                        match s.table_meta().meta(attr) {
                            ColumnMeta::Int { min, max } => {
                                range = Some(match range {
                                    None => (*min, *max),
                                    Some((lo, hi)) => (lo.min(*min), hi.max(*max)),
                                });
                            }
                            _ => {
                                return Err(StorageError::Corrupt(
                                    "shards disagree on column encodings".into(),
                                ))
                            }
                        }
                    }
                    let (min, max) = range.unwrap_or((0, 0));
                    Ok(ColumnMeta::Int { min, max })
                }
            }
        })
        .collect::<Result<_>>()?;
    TableMeta::new(schema, metas, num_rows, options)
}

/// The per-attribute gid remaps carrying one shard's dictionary space into
/// the unified space (`None` for integer attributes and for shards whose
/// dictionary already coincides with the unified one). Remaps are strictly
/// increasing — both dictionaries are sorted — which is what
/// `remap_users` / `remap_gids` require to preserve ordering predicates.
fn overlay_for_shard(unified: &TableMeta, shard: &TableMeta) -> Result<Vec<Option<Arc<Vec<u32>>>>> {
    (0..unified.schema().arity())
        .map(|attr| -> Result<Option<Arc<Vec<u32>>>> {
            let Some(shard_dict) = shard.global_dict(attr) else {
                return Ok(None);
            };
            let unified_dict = unified
                .global_dict(attr)
                .expect("unified meta has a dictionary wherever shards do");
            let remap: Vec<u32> = shard_dict
                .values()
                .iter()
                .map(|v| {
                    unified_dict.lookup(v).ok_or_else(|| {
                        StorageError::Corrupt(format!(
                            "shard dictionary value {v:?} missing from the unified dictionary"
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            let identity = remap.len() == unified_dict.len()
                && remap.iter().enumerate().all(|(i, &g)| g == i as u32);
            Ok(if identity { None } else { Some(Arc::new(remap)) })
        })
        .collect()
}

impl ChunkSource for ShardedSource {
    fn table_meta(&self) -> &TableMeta {
        &self.meta
    }

    fn num_chunks(&self) -> usize {
        self.chunk_map.len()
    }

    fn index_entry(&self, idx: usize) -> &ChunkIndexEntry {
        let (shard, local) = self.chunk_map[idx];
        self.shards[shard as usize].index_entry(local as usize)
    }

    fn chunk(&self, idx: usize) -> Result<ChunkRef<'_>> {
        let (shard, local) = self.chunk_map[idx];
        self.shards[shard as usize].chunk(local as usize)
    }

    fn chunk_columns(&self, idx: usize, cols: &[usize]) -> Result<ChunkRef<'_>> {
        let (shard, local) = self.chunk_map[idx];
        self.shards[shard as usize].chunk_columns(local as usize, cols)
    }

    fn chunks_decoded(&self) -> usize {
        self.shards.iter().map(|s| s.chunks_decoded()).sum()
    }

    fn io_stats(&self) -> SourceIoStats {
        // Monotone counters sum across shards; the cache gauges are shared
        // (one budget for the whole table), so they are taken once.
        let mut total = SourceIoStats::default();
        for s in &self.shards {
            total.chunks_decoded += s.chunks_decoded();
            total.columns_decoded += s.columns_decoded();
            total.bytes_read += s.bytes_read();
            total.bytes_decompressed += s.bytes_decompressed();
            for (t, d) in total.decode.iter_mut().zip(s.decode_stats()) {
                t.bytes_out += d.bytes_out;
                t.nanos += d.nanos;
            }
        }
        if let Some(first) = self.shards.first() {
            let shared = first.io_stats();
            total.cache_evictions = shared.cache_evictions;
            total.cache_resident_bytes = shared.cache_resident_bytes;
            total.cache_budget_bytes = shared.cache_budget_bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CompressionOptions;
    use cohana_activity::{generate, GeneratorConfig};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cohana-shard-test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small() -> ActivityTable {
        generate(&GeneratorConfig::small())
    }

    #[test]
    fn manifest_round_trips() {
        let m = ShardManifest {
            boundaries: vec!["user-0300".into(), "user-0600".into()],
            files: vec!["a.cohana".into(), "b.cohana".into(), "c.cohana".into()],
            tombstones: vec!["user-0042".into()],
        };
        let decoded = ShardManifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let m = ShardManifest {
            boundaries: vec!["m".into()],
            files: vec!["a".into(), "b".into()],
            tombstones: vec![],
        };
        let mut bytes = m.encode();
        // Bad magic.
        bytes[0] ^= 0xff;
        assert!(matches!(ShardManifest::decode(&bytes).unwrap_err(), StorageError::Corrupt(_)));
        bytes[0] ^= 0xff;
        // Truncation.
        assert!(ShardManifest::decode(&bytes[..bytes.len() - 5]).is_err());
        // Non-increasing boundaries.
        let bad = ShardManifest {
            boundaries: vec!["z".into(), "a".into()],
            files: vec!["a".into(), "b".into(), "c".into()],
            tombstones: vec![],
        };
        assert!(ShardManifest::decode(&bad.encode()).is_err());
        // Path traversal in a file name.
        let evil =
            ShardManifest { boundaries: vec![], files: vec!["../evil".into()], tombstones: vec![] };
        assert!(ShardManifest::decode(&evil.encode()).is_err());
    }

    #[test]
    fn routing_respects_boundaries() {
        let m = ShardManifest {
            boundaries: vec!["g".into(), "p".into()],
            files: vec!["a".into(), "b".into(), "c".into()],
            tombstones: vec![],
        };
        assert_eq!(m.route("a"), 0);
        assert_eq!(m.route("f"), 0);
        assert_eq!(m.route("g"), 1); // boundary value belongs to the right range
        assert_eq!(m.route("o"), 1);
        assert_eq!(m.route("p"), 2);
        assert_eq!(m.route("zzz"), 2);
    }

    #[test]
    fn create_splits_users_across_shards() {
        let dir = temp_dir("create");
        let t = small();
        let manifest =
            create_sharded(&dir, &t, 4, CompressionOptions::with_chunk_size(256)).unwrap();
        assert_eq!(manifest.num_shards(), 4);
        // Every shard file exists and the row counts sum to the table's.
        let mut rows = 0usize;
        for i in 0..manifest.num_shards() {
            let src = FileSource::open(&manifest.shard_path(&dir, i)).unwrap();
            rows += src.table_meta().num_rows();
            assert!(src.table_meta().num_rows() > 0, "shard {i} is empty");
        }
        assert_eq!(rows, t.num_rows());
        // Each user's rows are in exactly the shard routing says.
        let user_idx = t.schema().user_idx();
        for block in t.user_blocks() {
            let user = t.rows()[block.start].get(user_idx).as_str().unwrap();
            let shard = manifest.route(user);
            let src = FileSource::open(&manifest.shard_path(&dir, shard)).unwrap();
            assert!(
                src.table_meta().global_dict(user_idx).unwrap().lookup(user).is_some(),
                "user {user} missing from its routed shard {shard}"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_source_concatenates_shards() {
        let dir = temp_dir("source");
        let t = small();
        create_sharded(&dir, &t, 3, CompressionOptions::with_chunk_size(256)).unwrap();
        let sharded = ShardedSource::open(&dir).unwrap();
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(sharded.table_meta().num_rows(), t.num_rows());
        // Decompressing every chunk through the source yields the original
        // rows (order within the table differs across shard boundaries only
        // by user ranges, which are disjoint and ascending — so the simple
        // concatenation equals the sorted original).
        let mut all_rows = Vec::new();
        let meta = sharded.table_meta().clone();
        for i in 0..sharded.num_chunks() {
            let chunk = sharded.chunk(i).unwrap();
            all_rows.extend(crate::table::chunk_rows(&meta, &chunk));
        }
        assert_eq!(all_rows.len(), t.num_rows());
        let original: Vec<Vec<cohana_activity::Value>> =
            t.rows().iter().map(|r| r.values().to_vec()).collect();
        assert_eq!(all_rows, original);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_routes_and_parallel_appends() {
        let dir = temp_dir("append");
        let t = small();
        // Build from the first half, append the second half.
        let rows = t.rows();
        let blocks: Vec<_> = t.user_blocks().collect();
        let mid_block = blocks.len() / 2;
        let mid = blocks[mid_block].start;
        let first =
            ActivityTable::from_sorted_rows(t.schema().clone(), rows[..mid].to_vec()).unwrap();
        let second =
            ActivityTable::from_sorted_rows(t.schema().clone(), rows[mid..].to_vec()).unwrap();
        // Boundaries from the full user population so both halves route
        // across all shards... first half only covers low users; use 2
        // shards from the first half.
        create_sharded(&dir, &first, 2, CompressionOptions::with_chunk_size(256)).unwrap();
        let stats = append_sharded(&dir, &second).unwrap();
        assert!(stats.shards_touched() >= 1);
        assert_eq!(stats.total().rows_appended, second.num_rows());

        let sharded = ShardedSource::open(&dir).unwrap();
        assert_eq!(sharded.table_meta().num_rows(), t.num_rows());
        // No lock files left behind.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            assert!(!name.to_string_lossy().ends_with(".lock"), "stale lock {name:?}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shard_lock_is_exclusive() {
        let dir = temp_dir("lock");
        let path = dir.join("shard-0000.cohana");
        std::fs::write(&path, b"x").unwrap();
        let held = ShardLock::acquire(&path, Duration::from_millis(50)).unwrap();
        let denied = ShardLock::acquire(&path, Duration::from_millis(50));
        assert!(matches!(denied.unwrap_err(), StorageError::Busy(_)));
        held.release();
        // Released: can be re-acquired.
        ShardLock::acquire(&path, Duration::from_millis(50)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn delete_users_removes_rows_and_clears_tombstones() {
        let dir = temp_dir("delete");
        let t = small();
        create_sharded(&dir, &t, 3, CompressionOptions::with_chunk_size(256)).unwrap();
        let user_idx = t.schema().user_idx();
        let victims: Vec<&str> = t
            .user_blocks()
            .take(3)
            .map(|b| t.rows()[b.start].get(user_idx).as_str().unwrap())
            .collect();
        let victim_rows: usize = t
            .rows()
            .iter()
            .filter(|r| victims.contains(&r.get(user_idx).as_str().unwrap()))
            .count();

        let stats = delete_users(&dir, &victims).unwrap();
        assert_eq!(stats.users_deleted, victims.len());
        assert_eq!(stats.rows_deleted, victim_rows);
        assert!(stats.shards_rewritten >= 1);
        assert!(stats.reclaimed_bytes > 0);

        let sharded = ShardedSource::open(&dir).unwrap();
        assert_eq!(sharded.table_meta().num_rows(), t.num_rows() - victim_rows);
        let dict = sharded.table_meta().global_dict(user_idx).unwrap();
        for v in &victims {
            assert!(dict.lookup(v).is_none(), "deleted user {v} still present");
        }
        assert!(read_manifest(&dir).unwrap().tombstones().is_empty());

        // Idempotent: running again deletes nothing.
        let again = delete_users(&dir, &victims).unwrap();
        assert_eq!(again.users_deleted, 0);
        assert_eq!(again.rows_deleted, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pending_tombstones_survive_crash_and_apply_on_recovery() {
        let dir = temp_dir("crash");
        let t = small();
        create_sharded(&dir, &t, 2, CompressionOptions::with_chunk_size(256)).unwrap();
        let user_idx = t.schema().user_idx();
        let victim = t.rows()[0].get(user_idx).as_str().unwrap();

        // Simulate a crash after step 1 of delete_users: tombstone recorded,
        // no shard rewritten yet.
        let mut manifest = read_manifest(&dir).unwrap();
        manifest.tombstones = vec![victim.to_string()];
        write_manifest(&dir, &manifest).unwrap();
        // The data is still on disk.
        let before = ShardedSource::open(&dir).unwrap();
        assert!(before.table_meta().global_dict(user_idx).unwrap().lookup(victim).is_some());

        // Recovery applies the pending tombstones.
        let stats = apply_pending_tombstones(&dir).unwrap();
        assert_eq!(stats.users_deleted, 1);
        assert!(read_manifest(&dir).unwrap().tombstones().is_empty());
        let after = ShardedSource::open(&dir).unwrap();
        assert!(after.table_meta().global_dict(user_idx).unwrap().lookup(victim).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compaction_reclaims_dead_bytes_per_shard() {
        let dir = temp_dir("compact");
        let t = small();
        let rows = t.rows();
        let blocks: Vec<_> = t.user_blocks().collect();
        let mid = blocks[blocks.len() / 2].start;
        let first =
            ActivityTable::from_sorted_rows(t.schema().clone(), rows[..mid].to_vec()).unwrap();
        let second =
            ActivityTable::from_sorted_rows(t.schema().clone(), rows[mid..].to_vec()).unwrap();
        create_sharded(&dir, &first, 2, CompressionOptions::with_chunk_size(256)).unwrap();
        // Appends of overlapping users create dead bytes (returning-user
        // chunk rewrites + superseded footers).
        append_sharded(&dir, &second).unwrap();
        append_sharded(&dir, &{
            // Re-append a copy of some early users shifted in time to force
            // returning-user rewrites.
            let tidx = t.schema().time_idx();
            let shifted: Vec<_> = rows[..mid.min(200)]
                .iter()
                .map(|r| {
                    let mut vals = r.values().to_vec();
                    let shifted_time = vals[tidx].as_int().unwrap() + 10_000_000_000;
                    vals[tidx] = cohana_activity::Value::int(shifted_time);
                    cohana_activity::Tuple::new(vals)
                })
                .collect();
            ActivityTable::from_sorted_rows(t.schema().clone(), shifted).unwrap()
        })
        .unwrap();

        let space = shard_space_stats(&dir).unwrap();
        let dirty: Vec<usize> = (0..space.len()).filter(|&i| space[i].dead_bytes > 0).collect();
        assert!(!dirty.is_empty(), "appends should have left dead bytes somewhere");
        for &i in &dirty {
            let stats = compact_shard(&dir, i).unwrap();
            assert!(stats.reclaimed_bytes > 0, "shard {i} reclaimed nothing");
        }
        let space_after = shard_space_stats(&dir).unwrap();
        for &i in &dirty {
            assert_eq!(space_after[i].dead_bytes, 0, "shard {i} still has dead bytes");
        }
        // Table still reads fully.
        let sharded = ShardedSource::open(&dir).unwrap();
        assert_eq!(sharded.table_meta().num_rows(), t.num_rows() + mid.min(200));
        std::fs::remove_dir_all(&dir).ok();
    }

    use proptest::prelude::*;

    proptest! {
        /// Routing invariant: under any strictly-increasing set of range
        /// boundaries, every user id has exactly one owning shard, and
        /// `route` names it.
        #[test]
        fn prop_every_user_routes_to_exactly_one_shard(
            cuts in proptest::collection::vec("[a-z]{1,8}", 1..8),
            users in proptest::collection::vec("[a-z]{1,8}", 1..64),
        ) {
            let mut boundaries: Vec<String> = cuts;
            boundaries.sort();
            boundaries.dedup();
            let files: Vec<String> =
                (0..=boundaries.len()).map(|i| format!("shard-{i:04}.cohana")).collect();
            let manifest = ShardManifest::new(boundaries.clone(), files).unwrap();
            for user in &users {
                let owner = manifest.route(user);
                prop_assert!(owner < manifest.num_shards());
                // `owner`'s range contains the user...
                if owner > 0 {
                    prop_assert!(boundaries[owner - 1].as_str() <= user.as_str());
                }
                if owner < boundaries.len() {
                    prop_assert!(user.as_str() < boundaries[owner].as_str());
                }
                // ...and it is the only range that does.
                let owners = (0..manifest.num_shards())
                    .filter(|&i| {
                        (i == 0 || boundaries[i - 1].as_str() <= user.as_str())
                            && (i == boundaries.len() || user.as_str() < boundaries[i].as_str())
                    })
                    .count();
                prop_assert_eq!(owners, 1);
            }
        }
    }
}
