//! Chunk sources: uniform, lazily-loadable access to a table's chunks.
//!
//! The executor processes a table one chunk at a time and, thanks to the
//! per-chunk metadata COHANA keeps (§4.1), can often prove from metadata
//! alone that a chunk contributes nothing to a query (birth action absent
//! from the chunk's action dictionary, or birth-time bounds disjoint from
//! the chunk's time range). [`ChunkSource`] makes that split explicit:
//!
//! * [`ChunkIndexEntry`] carries exactly the pruning metadata, available for
//!   *every* chunk without touching chunk payloads;
//! * [`ChunkSource::chunk`] materializes one chunk's payload on demand;
//! * [`ChunkSource::chunk_columns`] materializes only the columns named by
//!   the plan's projection list — on a v3 column-addressable file, columns
//!   the query never names are never read from disk.
//!
//! Two implementations exist: [`CompressedTable`] (everything resident in
//! memory — `chunk` is a borrow) and [`FileSource`] (a footer-indexed v2/v3
//! file — segments are seeked, read, and decoded on demand and retained in a
//! **bounded, byte-budgeted LRU cache** over `(chunk, column)` entries, so a
//! table much larger than RAM can be queried within a fixed memory budget).
//! Opening a `FileSource` costs O(footer): a selective query on a cold table
//! pays I/O and decode cost only for the chunk columns it actually touches,
//! mirroring the row-group/column-chunk metadata designs of Parquet and
//! GBAM.

use crate::chunk::Chunk;
use crate::column::ChunkColumn;
use crate::persist::{self, ChunkLayout};
use crate::record;
use crate::rle::UserRle;
use crate::table::{validate_chunk, validate_column, validate_rle, CompressedTable, TableMeta};
use crate::{Result, StorageError};
use cohana_activity::Schema;
use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Per-column statistics recorded in a v3 footer's [`ChunkIndexEntry`]: the
/// analogue of Parquet's `ColumnChunkMetaData` statistics, computable from
/// the chunk payload and therefore verifiable after a lazy decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnStats {
    /// The user column: its data is the RLE triple array, described by the
    /// entry's row/user counts.
    User,
    /// A dictionary-encoded string column: number of distinct values in the
    /// chunk.
    Str {
        /// Size of the chunk dictionary.
        distinct: u32,
    },
    /// A delta-encoded integer column: the chunk's value range.
    Int {
        /// Minimum value in the chunk.
        min: i64,
        /// Maximum value in the chunk.
        max: i64,
    },
}

/// Per-chunk metadata: everything the executor needs to decide whether a
/// chunk can contribute to a query, without loading the chunk itself. The
/// persistence footer stores one entry per chunk (the analogue of Parquet's
/// `RowGroupMetaData` + the column-chunk statistics it wraps). v3 footers
/// additionally record one [`ColumnStats`] per attribute; v2 footers predate
/// column stats and leave the vector empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkIndexEntry {
    /// Tuples in the chunk.
    pub num_rows: u64,
    /// Distinct users in the chunk.
    pub num_users: u64,
    /// Minimum of the time attribute over the chunk.
    pub time_min: i64,
    /// Maximum of the time attribute over the chunk.
    pub time_max: i64,
    /// The chunk's action dictionary: sorted global ids of every action that
    /// occurs in the chunk. Membership here decides birth-action pruning.
    pub action_gids: Vec<u32>,
    /// Per-attribute statistics (one per schema position; empty for entries
    /// parsed from v2 footers, which do not record them).
    pub column_stats: Vec<ColumnStats>,
}

impl ChunkIndexEntry {
    /// Compute the entry (including per-column stats) for a fully
    /// materialized in-memory chunk.
    pub fn of_chunk(chunk: &Chunk, schema: &Schema) -> Self {
        let (time_min, time_max) = chunk
            .column_required(schema.time_idx())
            .int_range()
            .expect("time column is integer-encoded");
        let action_gids = chunk
            .column_required(schema.action_idx())
            .dict()
            .expect("action column is dictionary-encoded")
            .global_ids()
            .to_vec();
        let column_stats = (0..schema.arity())
            .map(|idx| {
                if idx == schema.user_idx() {
                    return ColumnStats::User;
                }
                let col = chunk.column_required(idx);
                match col.int_range() {
                    Some((min, max)) => ColumnStats::Int { min, max },
                    None => ColumnStats::Str {
                        distinct: col.dict().expect("string column").len() as u32,
                    },
                }
            })
            .collect();
        ChunkIndexEntry {
            num_rows: chunk.num_rows() as u64,
            num_users: chunk.num_users() as u64,
            time_min,
            time_max,
            action_gids,
            column_stats,
        }
    }

    /// Whether this (possibly untrusted, footer-parsed) entry agrees with an
    /// entry recomputed from the decoded payload. Entries from v2 footers
    /// carry no column stats; those compare on the base fields only.
    pub fn matches(&self, computed: &ChunkIndexEntry) -> bool {
        self.num_rows == computed.num_rows
            && self.num_users == computed.num_users
            && self.time_min == computed.time_min
            && self.time_max == computed.time_max
            && self.action_gids == computed.action_gids
            && (self.column_stats.is_empty() || self.column_stats == computed.column_stats)
    }

    /// Whether any tuple in the chunk performs the action with this global
    /// id.
    pub fn has_action(&self, gid: u32) -> bool {
        self.action_gids.binary_search(&gid).is_ok()
    }

    /// Whether the chunk's time range is disjoint from `[lo, hi]`.
    pub fn time_disjoint(&self, lo: i64, hi: i64) -> bool {
        hi < self.time_min || lo > self.time_max
    }
}

/// A loaded chunk: borrowed from a resident table, owned by the caller, or
/// shared with a bounded cache.
///
/// `Owned` and `Shared` are what make cache eviction possible: a source that
/// hands out only `&self`-lifetime borrows is forced to retain every decode
/// for its whole life. [`FileSource`] returns `Shared`/`Owned` values whose
/// segments are reference-counted with the cache, so eviction never
/// invalidates an in-flight chunk.
pub enum ChunkRef<'a> {
    /// Chunk resident in the source (memory table).
    Borrowed(&'a Chunk),
    /// Chunk assembled for this call (segments may still be shared with the
    /// source's cache via `Arc`).
    Owned(Box<Chunk>),
    /// Whole chunk shared with the source's cache.
    Shared(Arc<Chunk>),
}

impl Deref for ChunkRef<'_> {
    type Target = Chunk;
    fn deref(&self) -> &Chunk {
        match self {
            ChunkRef::Borrowed(c) => c,
            ChunkRef::Owned(c) => c,
            ChunkRef::Shared(c) => c,
        }
    }
}

/// Decode-throughput counters for one codec: how many raw bytes its blobs
/// decoded to and how long that took. Indexed by codec tag in
/// [`SourceIoStats::decode`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CodecDecode {
    /// Bytes the decoded blobs serialize to raw (same unit as
    /// `bytes_decompressed`).
    pub bytes_out: u64,
    /// Wall time spent inside the decoders, in nanoseconds.
    pub nanos: u64,
}

impl CodecDecode {
    /// Decode throughput in MB/s of decoded output (0.0 before any blob
    /// has been decoded). "MB" is 10^6 bytes, matching the bench reports.
    pub fn mbps(&self) -> f64 {
        if self.nanos == 0 {
            0.0
        } else {
            self.bytes_out as f64 * 1000.0 / self.nanos as f64
        }
    }
}

/// I/O and cache counters of a source (all zero for fully resident
/// sources). Diagnostics: lets tests, benches, and the shell's `.stats`
/// assert that pruning and projection pushdown actually avoided work.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SourceIoStats {
    /// Chunks whose skeleton (RLE user column, or the whole blob on v2) was
    /// decoded from backing storage.
    pub chunks_decoded: usize,
    /// Individual column segments decoded (v3 sources; 0 on v2, which only
    /// decodes whole chunks).
    pub columns_decoded: usize,
    /// Payload bytes read from backing storage (excludes the footer). With
    /// v4 codec-compressed blobs these are *on-disk* (compressed) bytes.
    pub bytes_read: u64,
    /// Bytes the read blobs decode to — their raw (v3-serialized) size.
    /// Equals `bytes_read` on v1–v3 sources, whose blobs are stored raw;
    /// the gap between the two is what the v4 codecs saved on the disk
    /// path.
    pub bytes_decompressed: u64,
    /// Per-codec decode throughput counters, indexed by codec tag (raw,
    /// delta, ans). RLE and whole-chunk (v2) blobs count under raw.
    pub decode: [CodecDecode; 3],
    /// Cache entries evicted to stay within the byte budget.
    pub cache_evictions: u64,
    /// Bytes currently retained by the cache.
    pub cache_resident_bytes: usize,
    /// The configured cache byte budget.
    pub cache_budget_bytes: usize,
}

impl SourceIoStats {
    /// The I/O performed since `baseline` was snapshotted from the same
    /// source: monotone counters are subtracted, gauge fields
    /// (`cache_resident_bytes`, `cache_budget_bytes`) keep their current
    /// values. This is the per-query attribution primitive: snapshot before
    /// a query, subtract after, and the difference is what happened on the
    /// source during the query. That is exactly the query's own cost while
    /// it has the source to itself; concurrent queries on the same source
    /// fall into each other's windows, making the delta an upper bound. For
    /// exact attribution under source-level concurrency, install an
    /// [`IoRecorder`](crate::IoRecorder) on the decoding threads instead —
    /// that is what the executor's query streams do.
    pub fn delta_since(&self, baseline: &SourceIoStats) -> SourceIoStats {
        SourceIoStats {
            chunks_decoded: self.chunks_decoded.saturating_sub(baseline.chunks_decoded),
            columns_decoded: self.columns_decoded.saturating_sub(baseline.columns_decoded),
            bytes_read: self.bytes_read.saturating_sub(baseline.bytes_read),
            bytes_decompressed: self.bytes_decompressed.saturating_sub(baseline.bytes_decompressed),
            decode: std::array::from_fn(|i| CodecDecode {
                bytes_out: self.decode[i].bytes_out.saturating_sub(baseline.decode[i].bytes_out),
                nanos: self.decode[i].nanos.saturating_sub(baseline.decode[i].nanos),
            }),
            cache_evictions: self.cache_evictions.saturating_sub(baseline.cache_evictions),
            cache_resident_bytes: self.cache_resident_bytes,
            cache_budget_bytes: self.cache_budget_bytes,
        }
    }
}

/// Uniform access to a table's chunks, with pruning metadata available
/// before any chunk I/O.
pub trait ChunkSource: Send + Sync {
    /// The chunk-independent table metadata (schema, global dictionaries,
    /// integer ranges, row count).
    fn table_meta(&self) -> &TableMeta;

    /// Number of chunks.
    fn num_chunks(&self) -> usize;

    /// Pruning metadata of one chunk. Always available without chunk I/O.
    fn index_entry(&self, idx: usize) -> &ChunkIndexEntry;

    /// Materialize one chunk, loading and decoding it if necessary.
    fn chunk(&self, idx: usize) -> Result<ChunkRef<'_>>;

    /// Materialize one chunk **partially**: the returned chunk is guaranteed
    /// to carry the user RLE plus the column segments of every attribute in
    /// `cols` (the user attribute's data is always in the RLE; other
    /// attributes may or may not be materialized). Sources without
    /// column-addressable storage fall back to the whole chunk.
    fn chunk_columns(&self, idx: usize, cols: &[usize]) -> Result<ChunkRef<'_>> {
        let _ = cols;
        self.chunk(idx)
    }

    /// How many chunks this source has decoded from backing storage since it
    /// was opened (0 for fully resident sources). Diagnostics: lets tests
    /// and benchmarks assert that pruning avoided I/O.
    fn chunks_decoded(&self) -> usize;

    /// I/O and cache counters (all zero for fully resident sources).
    fn io_stats(&self) -> SourceIoStats {
        SourceIoStats::default()
    }
}

impl ChunkSource for CompressedTable {
    fn table_meta(&self) -> &TableMeta {
        self.table_meta()
    }

    fn num_chunks(&self) -> usize {
        self.chunks().len()
    }

    fn index_entry(&self, idx: usize) -> &ChunkIndexEntry {
        &self.index_entries()[idx]
    }

    fn chunk(&self, idx: usize) -> Result<ChunkRef<'_>> {
        Ok(ChunkRef::Borrowed(&self.chunks()[idx]))
    }

    fn chunks_decoded(&self) -> usize {
        0
    }
}

/// Default byte budget of a [`FileSource`]'s segment cache (256 MiB).
pub const DEFAULT_CACHE_BUDGET: usize = 256 * 1024 * 1024;

/// Whether two open handles name the same underlying file. Appends grow a
/// file strictly in place (same inode); compaction and external rewrites
/// replace it (new inode), after which old byte locations say nothing about
/// the new content. On platforms without inode identity, always report
/// "different" — the refresh path then conservatively drops its cache.
#[cfg(unix)]
fn same_inode(a: &File, b: &File) -> bool {
    use std::os::unix::fs::MetadataExt;
    match (a.metadata(), b.metadata()) {
        (Ok(x), Ok(y)) => x.dev() == y.dev() && x.ino() == y.ino(),
        _ => false,
    }
}

#[cfg(not(unix))]
fn same_inode(_a: &File, _b: &File) -> bool {
    false
}

/// Cache key: `(source id, chunk index, segment id)` where segment 0 is the
/// whole chunk (v2), 1 the RLE user column, and `2 + attr` a column segment.
/// The source id disambiguates entries when several [`FileSource`]s — the
/// shards of one sharded table — share a single byte-budgeted cache.
type SegKey = (u32, u32, u32);

const SEG_WHOLE: u32 = 0;
const SEG_RLE: u32 = 1;

fn seg_col(attr: usize) -> u32 {
    2 + attr as u32
}

/// One decoded segment retained by the cache. Cloning is an `Arc` bump.
#[derive(Clone)]
enum CacheSlot {
    Rle(Arc<UserRle>),
    Col(Arc<ChunkColumn>),
    Whole(Arc<Chunk>),
}

struct CacheEntry {
    slot: CacheSlot,
    bytes: usize,
    tick: u64,
}

/// Bounded LRU over decoded segments, keyed `(source, chunk, column)`,
/// accounted in compressed payload bytes. Eviction happens **before**
/// insertion, so the resident total never exceeds the budget, even
/// transiently; a segment larger than the whole budget is simply never
/// retained. One cache can back several sources (the shards of a sharded
/// table), which share the single byte budget.
pub(crate) struct SegmentCache {
    budget: usize,
    resident: usize,
    tick: u64,
    evictions: u64,
    map: HashMap<SegKey, CacheEntry>,
}

impl SegmentCache {
    fn new(budget: usize) -> Self {
        SegmentCache { budget, resident: 0, tick: 0, evictions: 0, map: HashMap::new() }
    }

    fn get(&mut self, key: SegKey) -> Option<CacheSlot> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.tick = tick;
            e.slot.clone()
        })
    }

    /// Insert an entry, evicting LRU entries as needed; returns how many
    /// evictions this insertion caused (credited to the inserting query's
    /// recorder by the caller).
    fn insert(&mut self, key: SegKey, slot: CacheSlot, bytes: usize) -> u64 {
        if let Some(old) = self.map.remove(&key) {
            self.resident -= old.bytes;
        }
        if bytes > self.budget {
            // A segment larger than the whole budget is never retained.
            // Nothing resident is displaced, so this is not an eviction.
            return 0;
        }
        let mut evicted_now = 0;
        while self.resident + bytes > self.budget {
            let lru = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
                .expect("resident > 0 implies a cached entry");
            let evicted = self.map.remove(&lru).expect("lru key present");
            self.resident -= evicted.bytes;
            self.evictions += 1;
            evicted_now += 1;
        }
        self.tick += 1;
        self.map.insert(key, CacheEntry { slot, bytes, tick: self.tick });
        self.resident += bytes;
        evicted_now
    }

    /// Drop one entry, returning whether it was present. Not counted as an
    /// eviction: the entry is removed because it went stale, not to make
    /// room.
    fn remove(&mut self, key: &SegKey) -> bool {
        match self.map.remove(key) {
            Some(e) => {
                self.resident -= e.bytes;
                true
            }
            None => false,
        }
    }

    /// Distinct chunks of one source with at least one cached segment.
    fn chunks_resident(&self, src: u32) -> usize {
        let mut chunks: Vec<u32> =
            self.map.keys().filter(|(s, _, _)| *s == src).map(|(_, c, _)| *c).collect();
        chunks.sort_unstable();
        chunks.dedup();
        chunks.len()
    }
}

/// A cache handle shareable across several [`FileSource`]s: the shards of a
/// sharded table open with one of these so all their decoded segments count
/// against a single byte budget.
pub(crate) fn shared_cache(budget: usize) -> Arc<Mutex<SegmentCache>> {
    Arc::new(Mutex::new(SegmentCache::new(budget)))
}

/// A lazily-loaded, file-backed table in the footer-indexed v2 or v3
/// format.
///
/// [`FileSource::open`] reads only the 8-byte header and the footer — O(1)
/// in the number of tuples. On a v3 file every chunk's columns are
/// independently addressable: [`FileSource::chunk_columns`] seeks and
/// decodes only the RLE user column plus the projected column segments. On
/// a v2 file (whole-chunk blobs) any access degrades to fetching the full
/// chunk. Decoded segments live in a bounded byte-budgeted LRU cache
/// ([`FileSource::open_with_budget`]) so resident memory never exceeds the
/// configured budget regardless of table size.
#[derive(Debug)]
pub struct FileSource {
    path: PathBuf,
    file: Mutex<File>,
    meta: TableMeta,
    entries: Vec<ChunkIndexEntry>,
    /// Byte `(offset, length)` of each chunk's full payload span.
    locations: Vec<(u64, u64)>,
    /// Per-chunk blob layout (`Some` for v3 column-addressable files).
    layouts: Option<Vec<ChunkLayout>>,
    /// Non-current dictionary epochs of an appended file (see
    /// [`persist::append`]): chunks encoded under an older dictionary are
    /// re-based through their epoch's gid remaps at decode time.
    epochs: Vec<persist::EpochRemaps>,
    /// Per-chunk epoch tags (empty: every chunk is current).
    chunk_epochs: Vec<u32>,
    /// File offset where the footer begins — no payload blob may reach past
    /// it.
    payload_end: u64,
    /// Decoded-segment cache. `Arc`'d so a sharded table can hand every
    /// shard the same cache (one shared byte budget); a standalone source
    /// owns its cache exclusively.
    cache: Arc<Mutex<SegmentCache>>,
    /// This source's id within its (possibly shared) cache — the first
    /// component of every [`SegKey`] it reads or writes.
    cache_id: u32,
    /// Per-attribute gid remaps from this file's dictionary space into a
    /// unifying dictionary (installed by [`FileSource::rebase`]; empty for
    /// standalone sources). Applied at decode time *after* any epoch remap,
    /// so every segment this source serves is in unified-dictionary terms.
    overlay: Vec<Option<Arc<Vec<u32>>>>,
    decoded: AtomicUsize,
    columns_decoded: AtomicUsize,
    bytes_read: AtomicU64,
    bytes_decompressed: AtomicU64,
    /// Per-codec decode time/bytes, indexed by codec tag.
    decode_cells: [DecodeCell; 3],
}

/// Lock-free accumulator behind one [`CodecDecode`] slot.
#[derive(Debug, Default)]
struct DecodeCell {
    bytes_out: AtomicU64,
    nanos: AtomicU64,
}

impl DecodeCell {
    fn add(&self, bytes_out: u64, nanos: u64) {
        self.bytes_out.fetch_add(bytes_out, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    fn snapshot(&self) -> CodecDecode {
        CodecDecode {
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            nanos: self.nanos.load(Ordering::Relaxed),
        }
    }
}

/// What a [`FileSource::refresh`] changed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RefreshStats {
    /// Chunks visible before the refresh.
    pub chunks_before: usize,
    /// Chunks visible after the refresh.
    pub chunks_after: usize,
    /// Cached segments dropped because their backing blob or dictionary
    /// epoch changed; surviving entries keep serving without re-decode.
    pub segments_invalidated: usize,
}

impl std::fmt::Debug for SegmentCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentCache")
            .field("budget", &self.budget)
            .field("resident", &self.resident)
            .field("entries", &self.map.len())
            .field("evictions", &self.evictions)
            .finish()
    }
}

impl FileSource {
    /// Open a v2/v3 file by reading its footer, with the default cache
    /// budget ([`DEFAULT_CACHE_BUDGET`]); no chunk data is touched.
    ///
    /// Returns [`StorageError::Unsupported`] for v1 files, which have no
    /// footer: load those eagerly with [`persist::read_file`] and re-save to
    /// migrate them.
    pub fn open(path: &Path) -> Result<FileSource> {
        Self::open_with_budget(path, DEFAULT_CACHE_BUDGET)
    }

    /// Like [`FileSource::open`] with an explicit segment-cache byte budget.
    /// A budget of 0 disables caching entirely (every access re-reads and
    /// re-decodes).
    pub fn open_with_budget(path: &Path, cache_budget: usize) -> Result<FileSource> {
        Self::open_shared(path, shared_cache(cache_budget), 0)
    }

    /// Open a file against an existing (possibly shared) segment cache,
    /// tagging every cache entry with `cache_id`. This is how a sharded
    /// table gives all its shard files one byte budget; each shard gets a
    /// distinct id so refresh-time invalidation and per-shard residency
    /// accounting stay precise.
    pub(crate) fn open_shared(
        path: &Path,
        cache: Arc<Mutex<SegmentCache>>,
        cache_id: u32,
    ) -> Result<FileSource> {
        let mut file = File::open(path)?;
        let footer = persist::read_footer_from_file(&mut file)?;
        Ok(FileSource {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            meta: footer.meta,
            entries: footer.entries,
            locations: footer.locations,
            layouts: footer.layouts,
            epochs: footer.epochs,
            chunk_epochs: footer.chunk_epochs,
            payload_end: footer.payload_end,
            cache,
            cache_id,
            overlay: Vec::new(),
            decoded: AtomicUsize::new(0),
            columns_decoded: AtomicUsize::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_decompressed: AtomicU64::new(0),
            decode_cells: Default::default(),
        })
    }

    /// Re-base this source into a unifying dictionary space: replace its
    /// table metadata with `meta` (the merged metadata of a sharded table)
    /// and install per-attribute gid remaps from this file's own
    /// dictionaries into the unified ones. Index entries' action-gid lists
    /// are rewritten eagerly (they steer pruning, which runs in unified
    /// terms); segment payloads are rewritten lazily at decode time, after
    /// any epoch remap, so the footer cross-checks keep holding.
    ///
    /// Only column-addressable (v3/v4) files can be re-based, and a re-based
    /// source can no longer [`refresh`](FileSource::refresh) — its shard
    /// manifest owner reopens it instead.
    pub(crate) fn rebase(
        &mut self,
        meta: TableMeta,
        overlay: Vec<Option<Arc<Vec<u32>>>>,
    ) -> Result<()> {
        if self.layouts.is_none() {
            return Err(StorageError::Unsupported(
                "only column-addressable (v3/v4) files can join a sharded table".into(),
            ));
        }
        if overlay.len() != meta.schema().arity() {
            return Err(StorageError::Invalid(format!(
                "rebase overlay has {} attributes, schema has {}",
                overlay.len(),
                meta.schema().arity()
            )));
        }
        if let Some(remap) = overlay[meta.schema().action_idx()].as_ref() {
            for entry in &mut self.entries {
                for gid in &mut entry.action_gids {
                    *gid = *remap.get(*gid as usize).ok_or_else(|| {
                        StorageError::Corrupt(format!(
                            "shard action gid {gid} outside its dictionary (size {})",
                            remap.len()
                        ))
                    })?;
                }
            }
        }
        self.meta = meta;
        self.overlay = overlay;
        Ok(())
    }

    /// The overlay remap (if any) an attribute's segments need after their
    /// epoch remap (see [`FileSource::rebase`]).
    fn overlay_for(&self, attr: usize) -> Option<&Arc<Vec<u32>>> {
        self.overlay.get(attr).and_then(|r| r.as_ref())
    }

    /// Re-read the footer from the file's current state on disk, picking up
    /// anything [`persist::append`] (or
    /// [`persist::compact`]) wrote since this
    /// source opened — without disturbing other holders of the old state:
    /// until `refresh` is called, the source keeps serving its original
    /// footer snapshot, which is why prepared statements pinning a source
    /// keep snapshot semantics while the engine swaps refreshed sources into
    /// its catalog.
    ///
    /// Cached segments survive a refresh only when their bytes provably did
    /// not change: the file must still be the **same inode** (appends are
    /// strictly append-only, so on the same inode an unchanged blob
    /// location means unchanged bytes) *and* the segment's blob location
    /// and dictionary epoch must be unchanged. A rewrite that replaced the
    /// path ([`persist::compact`]'s temp-file + rename, or any external
    /// rewrite) drops the whole cache — locations are meaningless across a
    /// re-encoded image even when they numerically coincide. Everything
    /// stale is dropped before the new footer is adopted, so no stale
    /// segment can ever be served.
    pub fn refresh(&mut self) -> Result<RefreshStats> {
        if !self.overlay.is_empty() {
            // A re-based source's metadata and cached segments are in the
            // unified dictionary space of its sharded table; adopting the
            // file's own footer here would mix the two spaces. The sharded
            // table reopens and re-bases its shards instead.
            return Err(StorageError::Unsupported(
                "a re-based shard member cannot refresh in place; reopen the sharded table".into(),
            ));
        }
        let mut file = File::open(&self.path)?;
        let footer = persist::read_footer_from_file(&mut file)?;
        let chunks_before = self.locations.len();

        let grown_in_place = same_inode(&self.file.lock().expect("file lock poisoned"), &file);
        let same_remap = |chunk: usize, attr: usize| {
            self.remap_for(chunk, attr).map(|r| r.as_slice())
                == footer.remap_for(chunk, attr).map(|r| r.as_slice())
        };
        let arity = footer.meta.schema().arity();

        let segments_invalidated = {
            let mut cache = self.cache.lock().expect("cache lock poisoned");
            let keys: Vec<SegKey> =
                cache.map.keys().filter(|k| k.0 == self.cache_id).copied().collect();
            let mut dropped = 0usize;
            for key in keys {
                let (chunk, seg) = (key.1 as usize, key.2);
                let keep = grown_in_place
                    && match (seg, &self.layouts, &footer.layouts) {
                        (SEG_WHOLE, None, None) => {
                            self.locations.get(chunk).is_some()
                                && self.locations.get(chunk) == footer.locations.get(chunk)
                        }
                        (SEG_RLE, Some(old), Some(new)) => {
                            matches!((old.get(chunk), new.get(chunk)),
                            (Some(a), Some(b)) if a.rle == b.rle)
                                && same_remap(chunk, footer.meta.schema().user_idx())
                        }
                        (col, Some(old), Some(new)) if col >= 2 => {
                            let attr = (col - 2) as usize;
                            attr < arity
                                && matches!((old.get(chunk), new.get(chunk)),
                                (Some(a), Some(b)) if a.cols.get(attr) == b.cols.get(attr))
                                && same_remap(chunk, attr)
                        }
                        _ => false,
                    };
                if !keep && cache.remove(&key) {
                    dropped += 1;
                }
            }
            dropped
        };

        let chunks_after = footer.locations.len();
        self.meta = footer.meta;
        self.entries = footer.entries;
        self.locations = footer.locations;
        self.layouts = footer.layouts;
        self.epochs = footer.epochs;
        self.chunk_epochs = footer.chunk_epochs;
        self.payload_end = footer.payload_end;
        // Swap the file handle too: after a compact the path names a new
        // inode, and the old handle would keep reading the pre-compact
        // image.
        *self.file.lock().expect("file lock poisoned") = file;
        Ok(RefreshStats { chunks_before, chunks_after, segments_invalidated })
    }

    /// The gid remap a chunk needs for an attribute (`None`: the chunk is
    /// already in current-dictionary terms).
    fn remap_for(&self, chunk: usize, attr: usize) -> Option<&Arc<Vec<u32>>> {
        let epoch = self.chunk_epochs.get(chunk).copied().unwrap_or(self.epochs.len() as u32);
        self.epochs.get(epoch as usize).and_then(|per_attr| per_attr[attr].as_ref())
    }

    /// The file backing this source.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether the backing file addresses each column independently (v3).
    pub fn is_column_addressable(&self) -> bool {
        self.layouts.is_some()
    }

    /// How many of this source's chunks currently have at least one cached
    /// segment.
    pub fn chunks_resident(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").chunks_resident(self.cache_id)
    }

    /// Bytes currently retained by the segment cache.
    pub fn cache_resident_bytes(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").resident
    }

    /// The configured cache byte budget.
    pub fn cache_budget_bytes(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").budget
    }

    /// Cache entries evicted so far to stay within the budget.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.lock().expect("cache lock poisoned").evictions
    }

    /// Payload bytes read from the file so far (excludes the footer). With
    /// v4 codec-compressed blobs these are on-disk (compressed) bytes.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Raw bytes the blobs read so far decoded to (equals
    /// [`FileSource::bytes_read`] on v1–v3 files, whose blobs are raw).
    pub fn bytes_decompressed(&self) -> u64 {
        self.bytes_decompressed.load(Ordering::Relaxed)
    }

    /// Column segments decoded so far (v3; 0 on v2 files).
    pub fn columns_decoded(&self) -> usize {
        self.columns_decoded.load(Ordering::Relaxed)
    }

    /// Read `len` bytes at `offset` from the backing file. A short read is
    /// reported as corruption naming the blob's offsets — the footer
    /// promised these bytes, so their absence means the file was truncated
    /// (e.g. a torn append) behind our back.
    fn read_range(&self, offset: u64, len: u64) -> Result<Vec<u8>> {
        if len > self.payload_end.saturating_sub(offset) {
            return Err(StorageError::Corrupt(format!(
                "blob at offset {offset} (length {len}) reaches past the payload region end \
                 {}",
                self.payload_end
            )));
        }
        let mut buf = vec![0u8; len as usize];
        {
            let mut file = self.file.lock().expect("file lock poisoned");
            file.seek(SeekFrom::Start(offset))?;
            file.read_exact(&mut buf).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    StorageError::Corrupt(format!(
                        "blob at offset {offset} (length {len}) reaches past the end of the \
                         file (truncated?)"
                    ))
                } else {
                    StorageError::Io(e.to_string())
                }
            })?;
        }
        self.bytes_read.fetch_add(len, Ordering::Relaxed);
        record::credit(|r| r.add_bytes_read(len));
        Ok(buf)
    }

    /// Fetch (cache or decode) the RLE user column of a v3 chunk.
    fn fetch_rle(&self, idx: usize, layout: &ChunkLayout) -> Result<Arc<UserRle>> {
        let key = (self.cache_id, idx as u32, SEG_RLE);
        if let Some(CacheSlot::Rle(rle)) = self.cache.lock().expect("cache lock poisoned").get(key)
        {
            return Ok(rle);
        }
        let entry = &self.entries[idx];
        let blob = self.read_range(layout.rle.offset, layout.rle.len)?;
        self.bytes_decompressed.fetch_add(layout.rle.uncompressed, Ordering::Relaxed);
        record::credit(|r| r.add_bytes_decompressed(layout.rle.uncompressed));
        let start = std::time::Instant::now();
        let mut rle = persist::decode_rle_blob(&blob)?;
        self.decode_cells[0].add(layout.rle.uncompressed, start.elapsed().as_nanos() as u64);
        if let Some(remap) = self.remap_for(idx, self.meta.schema().user_idx()) {
            rle = rle.remap_users(remap)?;
        }
        if let Some(remap) = self.overlay_for(self.meta.schema().user_idx()) {
            rle = rle.remap_users(remap)?;
        }
        validate_rle(&self.meta, idx, &rle, rle.num_rows())?;
        if rle.num_rows() as u64 != entry.num_rows || rle.num_users() as u64 != entry.num_users {
            return Err(StorageError::Corrupt(format!(
                "chunk {idx}: footer row/user counts disagree with the RLE user column"
            )));
        }
        self.decoded.fetch_add(1, Ordering::Relaxed);
        record::credit(|r| r.add_chunks_decoded(1));
        let rle = Arc::new(rle);
        let bytes = rle.packed_bytes();
        let evicted = self.cache.lock().expect("cache lock poisoned").insert(
            key,
            CacheSlot::Rle(rle.clone()),
            bytes,
        );
        record::credit(|r| r.add_cache_evictions(evicted));
        Ok(rle)
    }

    /// Fetch (cache or decode) one column segment of a v3 chunk, verifying
    /// it against the footer's per-column statistics.
    fn fetch_column(
        &self,
        idx: usize,
        attr: usize,
        layout: &ChunkLayout,
    ) -> Result<Arc<ChunkColumn>> {
        let key = (self.cache_id, idx as u32, seg_col(attr));
        if let Some(CacheSlot::Col(col)) = self.cache.lock().expect("cache lock poisoned").get(key)
        {
            return Ok(col);
        }
        let entry = &self.entries[idx];
        let loc = &layout.cols[attr];
        let blob = self.read_range(loc.offset, loc.len)?;
        let start = std::time::Instant::now();
        let mut col = persist::decode_column_blob_loc(&blob, loc)?;
        self.decode_cells[loc.codec.tag() as usize]
            .add(loc.uncompressed, start.elapsed().as_nanos() as u64);
        self.bytes_decompressed.fetch_add(loc.uncompressed, Ordering::Relaxed);
        record::credit(|r| r.add_bytes_decompressed(loc.uncompressed));
        if let Some(remap) = self.remap_for(idx, attr) {
            col = col.remap_gids(remap)?;
        }
        if let Some(remap) = self.overlay_for(attr) {
            col = col.remap_gids(remap)?;
        }
        validate_column(&self.meta, idx, attr, &col)?;
        if col.len() as u64 != entry.num_rows {
            return Err(StorageError::Corrupt(format!(
                "chunk {idx}: column {attr} has {} rows, footer claims {}",
                col.len(),
                entry.num_rows
            )));
        }
        // The footer's stats steered pruning before any I/O; now that the
        // payload is decoded they must agree with it — the per-column
        // analogue of the whole-chunk footer/payload comparison.
        let stats_ok = match (entry.column_stats.get(attr), &col) {
            (Some(ColumnStats::Str { distinct }), ChunkColumn::Str { dict, .. }) => {
                *distinct as usize == dict.len()
            }
            (Some(ColumnStats::Int { min, max }), ChunkColumn::Int { .. }) => {
                col.int_range() == Some((*min, *max))
            }
            _ => false,
        };
        if !stats_ok {
            return Err(StorageError::Corrupt(format!(
                "chunk {idx}: column {attr} stats disagree with payload"
            )));
        }
        let schema = self.meta.schema();
        if attr == schema.time_idx() && col.int_range() != Some((entry.time_min, entry.time_max)) {
            return Err(StorageError::Corrupt(format!(
                "chunk {idx}: footer time bounds disagree with the time column"
            )));
        }
        if attr == schema.action_idx()
            && col.dict().map(|d| d.global_ids()) != Some(entry.action_gids.as_slice())
        {
            return Err(StorageError::Corrupt(format!(
                "chunk {idx}: footer action dictionary disagrees with the action column"
            )));
        }
        self.columns_decoded.fetch_add(1, Ordering::Relaxed);
        record::credit(|r| r.add_columns_decoded(1));
        let col = Arc::new(col);
        let bytes = col.packed_bytes();
        let evicted = self.cache.lock().expect("cache lock poisoned").insert(
            key,
            CacheSlot::Col(col.clone()),
            bytes,
        );
        record::credit(|r| r.add_cache_evictions(evicted));
        Ok(col)
    }

    /// Assemble a (possibly partial) chunk from a v3 file: RLE + the
    /// requested columns.
    fn assemble_v3(
        &self,
        idx: usize,
        layouts: &[ChunkLayout],
        cols: &[usize],
    ) -> Result<ChunkRef<'_>> {
        let layout = &layouts[idx];
        let arity = self.meta.schema().arity();
        let user_idx = self.meta.schema().user_idx();
        let rle = self.fetch_rle(idx, layout)?;
        let mut columns: Vec<Option<Arc<ChunkColumn>>> = vec![None; arity];
        for &attr in cols {
            if attr >= arity {
                return Err(StorageError::Invalid(format!(
                    "projected column {attr} out of range (arity {arity})"
                )));
            }
            if attr == user_idx || columns[attr].is_some() {
                continue;
            }
            columns[attr] = Some(self.fetch_column(idx, attr, layout)?);
        }
        Ok(ChunkRef::Owned(Box::new(Chunk::from_shared(rle, columns)?)))
    }

    /// Fetch and decode one whole v2 chunk blob.
    fn whole_chunk_v2(&self, idx: usize) -> Result<ChunkRef<'_>> {
        let key = (self.cache_id, idx as u32, SEG_WHOLE);
        if let Some(CacheSlot::Whole(chunk)) =
            self.cache.lock().expect("cache lock poisoned").get(key)
        {
            return Ok(ChunkRef::Shared(chunk));
        }
        let (offset, len) = self.locations[idx];
        let blob = self.read_range(offset, len)?;
        self.bytes_decompressed.fetch_add(len, Ordering::Relaxed);
        record::credit(|r| r.add_bytes_decompressed(len));
        let start = std::time::Instant::now();
        let chunk = persist::decode_chunk_blob(&blob, self.meta.schema().arity())?;
        self.decode_cells[0].add(len, start.elapsed().as_nanos() as u64);
        validate_chunk(&self.meta, idx, &chunk)?;
        // The footer's index entry is untrusted input that already steered
        // pruning; now that the payload is decoded, the whole entry must
        // agree with it (row/user counts, time bounds, action dictionary).
        if !self.entries[idx].matches(&ChunkIndexEntry::of_chunk(&chunk, self.meta.schema())) {
            return Err(StorageError::Corrupt(format!(
                "chunk {idx}: footer index entry disagrees with chunk payload"
            )));
        }
        self.decoded.fetch_add(1, Ordering::Relaxed);
        record::credit(|r| r.add_chunks_decoded(1));
        let chunk = Arc::new(chunk);
        let bytes = chunk.packed_bytes();
        let evicted = self.cache.lock().expect("cache lock poisoned").insert(
            key,
            CacheSlot::Whole(chunk.clone()),
            bytes,
        );
        record::credit(|r| r.add_cache_evictions(evicted));
        Ok(ChunkRef::Shared(chunk))
    }

    /// Snapshot of the per-codec decode counters (indexed by codec tag).
    pub(crate) fn decode_stats(&self) -> [CodecDecode; 3] {
        std::array::from_fn(|i| self.decode_cells[i].snapshot())
    }
}

impl ChunkSource for FileSource {
    fn table_meta(&self) -> &TableMeta {
        &self.meta
    }

    fn num_chunks(&self) -> usize {
        self.locations.len()
    }

    fn index_entry(&self, idx: usize) -> &ChunkIndexEntry {
        &self.entries[idx]
    }

    fn chunk(&self, idx: usize) -> Result<ChunkRef<'_>> {
        match &self.layouts {
            Some(layouts) => {
                let all: Vec<usize> = (0..self.meta.schema().arity()).collect();
                self.assemble_v3(idx, layouts, &all)
            }
            None => self.whole_chunk_v2(idx),
        }
    }

    fn chunk_columns(&self, idx: usize, cols: &[usize]) -> Result<ChunkRef<'_>> {
        match &self.layouts {
            Some(layouts) => self.assemble_v3(idx, layouts, cols),
            // v2 blobs are not column-addressable: degrade to a whole-chunk
            // fetch, which materializes a superset of `cols`.
            None => self.whole_chunk_v2(idx),
        }
    }

    fn chunks_decoded(&self) -> usize {
        self.decoded.load(Ordering::Relaxed)
    }

    fn io_stats(&self) -> SourceIoStats {
        let cache = self.cache.lock().expect("cache lock poisoned");
        SourceIoStats {
            chunks_decoded: self.decoded.load(Ordering::Relaxed),
            columns_decoded: self.columns_decoded.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_decompressed: self.bytes_decompressed.load(Ordering::Relaxed),
            decode: self.decode_stats(),
            cache_evictions: cache.evictions,
            cache_resident_bytes: cache.resident,
            cache_budget_bytes: cache.budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CompressionOptions;
    use cohana_activity::{generate, GeneratorConfig};

    fn compressed() -> CompressedTable {
        let t = generate(&GeneratorConfig::small());
        CompressedTable::build(&t, CompressionOptions::with_chunk_size(256)).unwrap()
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cohana-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn index_entries_describe_chunks() {
        let c = compressed();
        assert!(c.chunks().len() > 1);
        let schema = c.schema().clone();
        for (chunk, entry) in c.chunks().iter().zip(c.index_entries()) {
            assert_eq!(entry.num_rows, chunk.num_rows() as u64);
            assert_eq!(entry.num_users, chunk.num_users() as u64);
            assert!(entry.time_min <= entry.time_max);
            // Every action in the chunk is in the entry and vice versa.
            let dict = chunk.column_required(schema.action_idx()).dict().unwrap();
            assert_eq!(entry.action_gids, dict.global_ids());
            // One stat per attribute, agreeing with the segments.
            assert_eq!(entry.column_stats.len(), schema.arity());
            assert_eq!(entry.column_stats[schema.user_idx()], ColumnStats::User);
            assert_eq!(
                entry.column_stats[schema.time_idx()],
                ColumnStats::Int { min: entry.time_min, max: entry.time_max }
            );
            assert_eq!(
                entry.column_stats[schema.action_idx()],
                ColumnStats::Str { distinct: dict.len() as u32 }
            );
        }
        let rows: u64 = c.index_entries().iter().map(|e| e.num_rows).sum();
        assert_eq!(rows, c.num_rows() as u64);
    }

    #[test]
    fn entry_pruning_predicates() {
        let entry = ChunkIndexEntry {
            num_rows: 10,
            num_users: 2,
            time_min: 100,
            time_max: 200,
            action_gids: vec![1, 4, 9],
            column_stats: vec![],
        };
        assert!(entry.has_action(4));
        assert!(!entry.has_action(5));
        assert!(entry.time_disjoint(0, 99));
        assert!(entry.time_disjoint(201, 300));
        assert!(!entry.time_disjoint(150, 160));
        assert!(!entry.time_disjoint(0, 100));
        assert!(!entry.time_disjoint(200, 300));
    }

    #[test]
    fn stat_less_entry_matches_computed() {
        let c = compressed();
        let computed = &c.index_entries()[0];
        let mut statless = computed.clone();
        statless.column_stats.clear();
        assert!(statless.matches(computed));
        assert!(computed.matches(computed));
        let mut wrong = computed.clone();
        wrong.num_users += 1;
        assert!(!wrong.matches(computed));
        let mut wrong_stats = computed.clone();
        wrong_stats.column_stats[1] = ColumnStats::Int { min: -1, max: -1 };
        assert!(!wrong_stats.matches(computed));
    }

    #[test]
    fn memory_source_borrows_everything() {
        let c = compressed();
        let src: &dyn ChunkSource = &c;
        assert_eq!(src.num_chunks(), c.chunks().len());
        for i in 0..src.num_chunks() {
            let chunk = src.chunk(i).unwrap();
            assert_eq!(chunk.num_rows(), c.chunks()[i].num_rows());
            // Projection requests on a resident table serve the whole chunk.
            let partial = src.chunk_columns(i, &[c.schema().time_idx()]).unwrap();
            assert!(matches!(partial, ChunkRef::Borrowed(_)));
        }
        assert_eq!(src.chunks_decoded(), 0);
        assert_eq!(src.io_stats(), SourceIoStats::default());
    }

    #[test]
    fn v3_file_source_loads_columns_lazily_and_caches() {
        let c = compressed();
        let arity = c.schema().arity();
        let path = temp_path("lazy-v3.cohana");
        persist::write_file(&c, &path).unwrap();

        let src = FileSource::open(&path).unwrap();
        assert!(src.is_column_addressable());
        assert_eq!(src.num_chunks(), c.chunks().len());
        assert_eq!(src.table_meta().num_rows(), c.num_rows());
        assert_eq!(src.chunks_decoded(), 0);
        assert_eq!(src.columns_decoded(), 0);
        assert_eq!(src.bytes_read(), 0);
        assert_eq!(src.chunks_resident(), 0);

        // Full fetch decodes the RLE + every non-user column.
        let chunk = src.chunk(1).unwrap();
        assert_eq!(&*chunk, &c.chunks()[1]);
        drop(chunk);
        assert_eq!(src.chunks_decoded(), 1);
        assert_eq!(src.columns_decoded(), arity - 1);
        assert!(src.bytes_read() > 0);
        assert_eq!(src.chunks_resident(), 1);

        // Second access is served from cache: no new decodes, no new reads.
        let bytes_before = src.bytes_read();
        let again = src.chunk(1).unwrap();
        drop(again);
        assert_eq!(src.chunks_decoded(), 1);
        assert_eq!(src.columns_decoded(), arity - 1);
        assert_eq!(src.bytes_read(), bytes_before);

        // Entries agree with the in-memory index.
        for i in 0..src.num_chunks() {
            assert_eq!(src.index_entry(i), &c.index_entries()[i]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v3_projection_decodes_only_named_columns() {
        let c = compressed();
        let time_idx = c.schema().time_idx();
        let user_idx = c.schema().user_idx();
        let path = temp_path("projected-v3.cohana");
        persist::write_file(&c, &path).unwrap();

        let src = FileSource::open(&path).unwrap();
        let chunk = src.chunk_columns(0, &[user_idx, time_idx]).unwrap();
        assert_eq!(src.columns_decoded(), 1, "only the time column decodes");
        assert_eq!(src.chunks_decoded(), 1);
        // The requested column is materialized and correct.
        assert_eq!(
            chunk.column_required(time_idx).int_value(0),
            c.chunks()[0].column_required(time_idx).int_value(0)
        );
        // Unprojected columns are absent, not wrong.
        let other = (0..c.schema().arity())
            .find(|&i| i != time_idx && i != user_idx)
            .expect("schema has more attributes");
        assert!(chunk.column(other).is_none());
        drop(chunk);

        // Widening the projection only decodes the delta.
        let wide = src.chunk_columns(0, &[user_idx, time_idx, other]).unwrap();
        assert_eq!(src.columns_decoded(), 2);
        assert!(wide.column(other).is_some());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_file_source_degrades_to_whole_chunk_fetch() {
        let c = compressed();
        let path = temp_path("lazy-v2.cohana");
        std::fs::write(&path, persist::to_bytes_v2(&c)).unwrap();

        let src = FileSource::open(&path).unwrap();
        assert!(!src.is_column_addressable());
        let chunk = src.chunk_columns(1, &[c.schema().time_idx()]).unwrap();
        // The whole chunk is materialized despite the narrow projection.
        assert_eq!(&*chunk, &c.chunks()[1]);
        drop(chunk);
        assert_eq!(src.chunks_decoded(), 1);
        assert_eq!(src.columns_decoded(), 0);

        // v2 entries carry no column stats.
        assert!(src.index_entry(0).column_stats.is_empty());

        // Cached: a second fetch decodes nothing.
        let again = src.chunk(1).unwrap();
        assert!(matches!(again, ChunkRef::Shared(_)));
        drop(again);
        assert_eq!(src.chunks_decoded(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_respects_byte_budget_for_both_versions() {
        let c = compressed();
        for (name, bytes) in [
            ("budget-v3.cohana", persist::to_bytes(&c)),
            ("budget-v2.cohana", persist::to_bytes_v2(&c)),
        ] {
            let path = temp_path(name);
            std::fs::write(&path, &bytes).unwrap();
            // A budget far smaller than the table forces constant eviction.
            let budget = 2 * 1024;
            let src = FileSource::open_with_budget(&path, budget).unwrap();
            for round in 0..2 {
                for i in 0..src.num_chunks() {
                    let chunk = src.chunk(i).unwrap();
                    assert_eq!(chunk.num_rows(), c.chunks()[i].num_rows(), "round {round}");
                    assert!(
                        src.cache_resident_bytes() <= budget,
                        "{name}: resident {} exceeds budget {budget}",
                        src.cache_resident_bytes()
                    );
                }
            }
            assert!(src.cache_evictions() > 0, "{name}: no evictions under a tiny budget");
            // With eviction in play, later rounds re-decode.
            assert!(src.chunks_decoded() > src.num_chunks(), "{name}: eviction forced re-decodes");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn zero_budget_disables_caching() {
        let c = compressed();
        let path = temp_path("budget-zero.cohana");
        persist::write_file(&c, &path).unwrap();
        let src = FileSource::open_with_budget(&path, 0).unwrap();
        src.chunk(0).unwrap();
        src.chunk(0).unwrap();
        assert_eq!(src.cache_resident_bytes(), 0);
        assert_eq!(src.chunks_decoded(), 2, "every access re-decodes");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_rejects_v1_files() {
        let c = compressed();
        let path = temp_path("v1.cohana");
        std::fs::write(&path, persist::to_bytes_v1(&c)).unwrap();
        assert!(matches!(FileSource::open(&path).unwrap_err(), StorageError::Unsupported(_)));
        // Eager loading still understands v1.
        assert_eq!(persist::read_file(&path).unwrap().num_rows(), c.num_rows());
        std::fs::remove_file(&path).ok();
    }
}
