//! Chunk sources: uniform, lazily-loadable access to a table's chunks.
//!
//! The executor processes a table one chunk at a time and, thanks to the
//! per-chunk metadata COHANA keeps (§4.1), can often prove from metadata
//! alone that a chunk contributes nothing to a query (birth action absent
//! from the chunk's action dictionary, or birth-time bounds disjoint from
//! the chunk's time range). [`ChunkSource`] makes that split explicit:
//!
//! * [`ChunkIndexEntry`] carries exactly the pruning metadata, available for
//!   *every* chunk without touching chunk payloads;
//! * [`ChunkSource::chunk`] materializes one chunk's payload on demand.
//!
//! Two implementations exist: [`CompressedTable`] (everything resident in
//! memory — `chunk` is a borrow) and [`FileSource`] (a v2 footer-indexed
//! file — `chunk` seeks, reads, and decodes one chunk, caching the result).
//! Opening a `FileSource` costs O(footer): a selective query on a cold table
//! pays decode cost only for the chunks it actually touches, mirroring the
//! row-group metadata designs of Parquet and GBAM.

use crate::chunk::Chunk;
use crate::persist;
use crate::table::{validate_chunk, CompressedTable, TableMeta};
use crate::{Result, StorageError};
use cohana_activity::Schema;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Per-chunk metadata: everything the executor needs to decide whether a
/// chunk can contribute to a query, without loading the chunk itself. The
/// v2 persistence footer stores one entry per chunk (the analogue of
/// Parquet's `RowGroupMetaData` + the column-chunk statistics it wraps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkIndexEntry {
    /// Tuples in the chunk.
    pub num_rows: u64,
    /// Distinct users in the chunk.
    pub num_users: u64,
    /// Minimum of the time attribute over the chunk.
    pub time_min: i64,
    /// Maximum of the time attribute over the chunk.
    pub time_max: i64,
    /// The chunk's action dictionary: sorted global ids of every action that
    /// occurs in the chunk. Membership here decides birth-action pruning.
    pub action_gids: Vec<u32>,
}

impl ChunkIndexEntry {
    /// Compute the entry for an in-memory chunk.
    pub fn of_chunk(chunk: &Chunk, schema: &Schema) -> Self {
        let (time_min, time_max) = chunk
            .column_required(schema.time_idx())
            .int_range()
            .expect("time column is integer-encoded");
        let action_gids = chunk
            .column_required(schema.action_idx())
            .dict()
            .expect("action column is dictionary-encoded")
            .global_ids()
            .to_vec();
        ChunkIndexEntry {
            num_rows: chunk.num_rows() as u64,
            num_users: chunk.num_users() as u64,
            time_min,
            time_max,
            action_gids,
        }
    }

    /// Whether any tuple in the chunk performs the action with this global
    /// id.
    pub fn has_action(&self, gid: u32) -> bool {
        self.action_gids.binary_search(&gid).is_ok()
    }

    /// Whether the chunk's time range is disjoint from `[lo, hi]`.
    pub fn time_disjoint(&self, lo: i64, hi: i64) -> bool {
        hi < self.time_min || lo > self.time_max
    }
}

/// A loaded chunk: either borrowed from a resident table or owned by the
/// caller after a lazy decode.
///
/// Both in-repo sources currently return `Borrowed` (`CompressedTable` is
/// resident; `FileSource` pins every decode in its cache). `Owned` is the
/// contract's room for sources that cannot hand out `&self`-lifetime
/// borrows — e.g. a bounded cache with eviction — without which the trait
/// would force unbounded retention on every future implementation.
pub enum ChunkRef<'a> {
    /// Chunk resident in the source (memory table or warm cache).
    Borrowed(&'a Chunk),
    /// Chunk decoded for this call; the source retains no copy.
    Owned(Box<Chunk>),
}

impl Deref for ChunkRef<'_> {
    type Target = Chunk;
    fn deref(&self) -> &Chunk {
        match self {
            ChunkRef::Borrowed(c) => c,
            ChunkRef::Owned(c) => c,
        }
    }
}

/// Uniform access to a table's chunks, with pruning metadata available
/// before any chunk I/O.
pub trait ChunkSource: Send + Sync {
    /// The chunk-independent table metadata (schema, global dictionaries,
    /// integer ranges, row count).
    fn table_meta(&self) -> &TableMeta;

    /// Number of chunks.
    fn num_chunks(&self) -> usize;

    /// Pruning metadata of one chunk. Always available without chunk I/O.
    fn index_entry(&self, idx: usize) -> &ChunkIndexEntry;

    /// Materialize one chunk, loading and decoding it if necessary.
    fn chunk(&self, idx: usize) -> Result<ChunkRef<'_>>;

    /// How many chunks this source has decoded from backing storage since it
    /// was opened (0 for fully resident sources). Diagnostics: lets tests
    /// and benchmarks assert that pruning avoided I/O.
    fn chunks_decoded(&self) -> usize;
}

impl ChunkSource for CompressedTable {
    fn table_meta(&self) -> &TableMeta {
        self.table_meta()
    }

    fn num_chunks(&self) -> usize {
        self.chunks().len()
    }

    fn index_entry(&self, idx: usize) -> &ChunkIndexEntry {
        &self.index_entries()[idx]
    }

    fn chunk(&self, idx: usize) -> Result<ChunkRef<'_>> {
        Ok(ChunkRef::Borrowed(&self.chunks()[idx]))
    }

    fn chunks_decoded(&self) -> usize {
        0
    }
}

/// A lazily-loaded, file-backed table in the v2 footer-indexed format.
///
/// [`FileSource::open`] reads only the 8-byte header and the footer — O(1)
/// in the number of tuples. Chunks are fetched and decoded on first access
/// and cached; [`FileSource::chunks_decoded`] reports how many chunk decodes
/// actually happened, which selective queries keep strictly below
/// [`num_chunks`](ChunkSource::num_chunks).
#[derive(Debug)]
pub struct FileSource {
    path: PathBuf,
    file: Mutex<File>,
    meta: TableMeta,
    entries: Vec<ChunkIndexEntry>,
    /// Byte `(offset, length)` of each chunk blob within the file.
    locations: Vec<(u64, u64)>,
    cache: Vec<OnceLock<Chunk>>,
    decoded: AtomicUsize,
}

impl FileSource {
    /// Open a v2 file by reading its footer; no chunk data is touched.
    ///
    /// Returns [`StorageError::Unsupported`] for v1 files, which have no
    /// footer: load those eagerly with [`persist::read_file`] and re-save to
    /// migrate them to v2.
    pub fn open(path: &Path) -> Result<FileSource> {
        let mut file = File::open(path)?;
        let footer = persist::read_footer_from_file(&mut file)?;
        let num_chunks = footer.locations.len();
        Ok(FileSource {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            meta: footer.meta,
            entries: footer.entries,
            locations: footer.locations,
            cache: (0..num_chunks).map(|_| OnceLock::new()).collect(),
            decoded: AtomicUsize::new(0),
        })
    }

    /// The file backing this source.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// How many chunks are currently resident in the cache.
    pub fn chunks_resident(&self) -> usize {
        self.cache.iter().filter(|c| c.get().is_some()).count()
    }

    /// Read one chunk's raw bytes from the file.
    fn read_blob(&self, idx: usize) -> Result<Vec<u8>> {
        let (offset, len) = self.locations[idx];
        let mut buf = vec![0u8; len as usize];
        let mut file = self.file.lock().expect("file lock poisoned");
        file.seek(SeekFrom::Start(offset))?;
        file.read_exact(&mut buf)?;
        Ok(buf)
    }
}

impl ChunkSource for FileSource {
    fn table_meta(&self) -> &TableMeta {
        &self.meta
    }

    fn num_chunks(&self) -> usize {
        self.locations.len()
    }

    fn index_entry(&self, idx: usize) -> &ChunkIndexEntry {
        &self.entries[idx]
    }

    fn chunk(&self, idx: usize) -> Result<ChunkRef<'_>> {
        if let Some(chunk) = self.cache[idx].get() {
            return Ok(ChunkRef::Borrowed(chunk));
        }
        let blob = self.read_blob(idx)?;
        let chunk = persist::decode_chunk_blob(&blob, self.meta.schema().arity())?;
        validate_chunk(&self.meta, idx, &chunk)?;
        // The footer's index entry is untrusted input that already steered
        // pruning; now that the payload is decoded, the whole entry must
        // agree with it (row/user counts, time bounds, action dictionary) —
        // the lazy-path analogue of the eager reader's footer/payload
        // comparison.
        if ChunkIndexEntry::of_chunk(&chunk, self.meta.schema()) != self.entries[idx] {
            return Err(StorageError::Corrupt(format!(
                "chunk {idx}: footer index entry disagrees with chunk payload"
            )));
        }
        self.decoded.fetch_add(1, Ordering::Relaxed);
        // Under concurrent access another thread may have decoded the same
        // chunk meanwhile; `get_or_init` keeps exactly one copy.
        Ok(ChunkRef::Borrowed(self.cache[idx].get_or_init(|| chunk)))
    }

    fn chunks_decoded(&self) -> usize {
        self.decoded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::CompressionOptions;
    use cohana_activity::{generate, GeneratorConfig};

    fn compressed() -> CompressedTable {
        let t = generate(&GeneratorConfig::small());
        CompressedTable::build(&t, CompressionOptions::with_chunk_size(256)).unwrap()
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("cohana-source-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn index_entries_describe_chunks() {
        let c = compressed();
        assert!(c.chunks().len() > 1);
        let schema = c.schema().clone();
        for (chunk, entry) in c.chunks().iter().zip(c.index_entries()) {
            assert_eq!(entry.num_rows, chunk.num_rows() as u64);
            assert_eq!(entry.num_users, chunk.num_users() as u64);
            assert!(entry.time_min <= entry.time_max);
            // Every action in the chunk is in the entry and vice versa.
            let dict = chunk.column_required(schema.action_idx()).dict().unwrap();
            assert_eq!(entry.action_gids, dict.global_ids());
        }
        let rows: u64 = c.index_entries().iter().map(|e| e.num_rows).sum();
        assert_eq!(rows, c.num_rows() as u64);
    }

    #[test]
    fn entry_pruning_predicates() {
        let entry = ChunkIndexEntry {
            num_rows: 10,
            num_users: 2,
            time_min: 100,
            time_max: 200,
            action_gids: vec![1, 4, 9],
        };
        assert!(entry.has_action(4));
        assert!(!entry.has_action(5));
        assert!(entry.time_disjoint(0, 99));
        assert!(entry.time_disjoint(201, 300));
        assert!(!entry.time_disjoint(150, 160));
        assert!(!entry.time_disjoint(0, 100));
        assert!(!entry.time_disjoint(200, 300));
    }

    #[test]
    fn memory_source_borrows_everything() {
        let c = compressed();
        let src: &dyn ChunkSource = &c;
        assert_eq!(src.num_chunks(), c.chunks().len());
        for i in 0..src.num_chunks() {
            let chunk = src.chunk(i).unwrap();
            assert_eq!(chunk.num_rows(), c.chunks()[i].num_rows());
        }
        assert_eq!(src.chunks_decoded(), 0);
    }

    #[test]
    fn file_source_loads_lazily_and_caches() {
        let c = compressed();
        let path = temp_path("lazy.cohana");
        persist::write_file(&c, &path).unwrap();

        let src = FileSource::open(&path).unwrap();
        assert_eq!(src.num_chunks(), c.chunks().len());
        assert_eq!(src.table_meta().num_rows(), c.num_rows());
        assert_eq!(src.chunks_decoded(), 0);
        assert_eq!(src.chunks_resident(), 0);

        // First access decodes; the chunk equals the in-memory one.
        let chunk = src.chunk(1).unwrap();
        assert_eq!(&*chunk, &c.chunks()[1]);
        drop(chunk);
        assert_eq!(src.chunks_decoded(), 1);
        assert_eq!(src.chunks_resident(), 1);

        // Second access is served from cache.
        let again = src.chunk(1).unwrap();
        assert!(matches!(again, ChunkRef::Borrowed(_)));
        drop(again);
        assert_eq!(src.chunks_decoded(), 1);

        // Entries agree with the in-memory index.
        for i in 0..src.num_chunks() {
            assert_eq!(src.index_entry(i), &c.index_entries()[i]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn file_source_rejects_v1_files() {
        let c = compressed();
        let path = temp_path("v1.cohana");
        std::fs::write(&path, persist::to_bytes_v1(&c)).unwrap();
        assert!(matches!(FileSource::open(&path).unwrap_err(), StorageError::Unsupported(_)));
        // Eager loading still understands v1.
        assert_eq!(persist::read_file(&path).unwrap().num_rows(), c.num_rows());
        std::fs::remove_file(&path).ok();
    }
}
