//! Storage statistics (powers the Figure 7 storage-size experiment).

use crate::column::ChunkColumn;
use crate::table::{ColumnMeta, CompressedTable};

/// Byte-level accounting of a compressed table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageStats {
    /// Total tuples.
    pub num_rows: usize,
    /// Distinct users.
    pub num_users: usize,
    /// Number of chunks.
    pub num_chunks: usize,
    /// Bytes of all global dictionaries.
    pub global_dict_bytes: usize,
    /// Bytes of all chunk dictionaries.
    pub chunk_dict_bytes: usize,
    /// Bytes of bit-packed payloads (codes, deltas, RLE triples).
    pub packed_bytes: usize,
    /// Per-attribute payload bytes, indexed by schema position.
    pub column_bytes: Vec<usize>,
}

impl StorageStats {
    /// Compute statistics for a compressed table.
    pub fn of(table: &CompressedTable) -> Self {
        let arity = table.schema().arity();
        let mut column_bytes = vec![0usize; arity];
        let mut chunk_dict_bytes = 0usize;
        let mut packed_bytes = 0usize;

        let global_dict_bytes = table
            .metas()
            .iter()
            .map(|m| match m {
                ColumnMeta::User { dict } | ColumnMeta::Str { dict } => dict.heap_bytes(),
                ColumnMeta::Int { .. } => 16,
            })
            .sum();

        let user_idx = table.schema().user_idx();
        for chunk in table.chunks() {
            let rle_bytes = chunk.user_rle().packed_bytes();
            column_bytes[user_idx] += rle_bytes;
            packed_bytes += rle_bytes;
            for (idx, col) in chunk.columns().iter().enumerate() {
                if let Some(col) = col {
                    column_bytes[idx] += col.packed_bytes();
                    match &**col {
                        ChunkColumn::Str { dict, codes } => {
                            chunk_dict_bytes += dict.heap_bytes();
                            packed_bytes += codes.packed_bytes();
                        }
                        ChunkColumn::Int { deltas, .. } => {
                            packed_bytes += deltas.packed_bytes() + 16;
                        }
                    }
                }
            }
        }

        StorageStats {
            num_rows: table.num_rows(),
            num_users: table.num_users(),
            num_chunks: table.chunks().len(),
            global_dict_bytes,
            chunk_dict_bytes,
            packed_bytes,
            column_bytes,
        }
    }

    /// Total compressed footprint in bytes.
    pub fn total_bytes(&self) -> usize {
        self.global_dict_bytes + self.chunk_dict_bytes + self.packed_bytes
    }

    /// Bytes per tuple (compression quality measure).
    pub fn bytes_per_tuple(&self) -> f64 {
        if self.num_rows == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / self.num_rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{CompressedTable, CompressionOptions};
    use cohana_activity::{generate, GeneratorConfig};

    #[test]
    fn stats_add_up() {
        let t = generate(&GeneratorConfig::small());
        let c = CompressedTable::build(&t, CompressionOptions::with_chunk_size(512)).unwrap();
        let s = StorageStats::of(&c);
        assert_eq!(s.num_rows, t.num_rows());
        assert_eq!(s.num_users, t.num_users());
        assert_eq!(s.num_chunks, c.chunks().len());
        assert_eq!(s.column_bytes.iter().sum::<usize>(), s.packed_bytes + s.chunk_dict_bytes);
        assert!(s.total_bytes() > 0);
        assert!(s.bytes_per_tuple() > 0.0);
    }

    #[test]
    fn larger_chunks_cost_more_bits_figure7() {
        // Figure 7: storage grows with chunk size (more distinct values per
        // chunk -> wider codes), though small datasets can be noisy; compare
        // extreme settings on a moderately sized table.
        let t = generate(&GeneratorConfig::new(400));
        let small = CompressedTable::build(&t, CompressionOptions::with_chunk_size(512)).unwrap();
        let large =
            CompressedTable::build(&t, CompressionOptions::with_chunk_size(1 << 22)).unwrap();
        let sb = StorageStats::of(&small);
        let lb = StorageStats::of(&large);
        // Pure packed payload (codes) shrinks or stays equal with small chunks.
        assert!(sb.packed_bytes <= lb.packed_bytes);
    }
}
