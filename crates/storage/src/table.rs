//! The compressed activity table: global metadata + chunks.

use crate::chunk::Chunk;
use crate::column::ChunkColumn;
use crate::dict::GlobalDict;
use crate::rle::UserRle;
use crate::source::ChunkIndexEntry;
use crate::{Result, StorageError};
use cohana_activity::{ActivityTable, AttributeRole, Schema, TableBuilder, Value, ValueType};
use std::sync::Arc;

/// Options controlling compression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionOptions {
    /// Target number of tuples per chunk. A chunk is closed at the first
    /// user boundary at or past this size, so chunks can exceed it by at
    /// most one user's activity count. The paper evaluates 16K–1M and
    /// defaults to 256K.
    pub chunk_size: usize,
}

impl CompressionOptions {
    /// Use a specific target chunk size (in tuples).
    pub fn with_chunk_size(chunk_size: usize) -> Self {
        CompressionOptions { chunk_size }
    }
}

impl Default for CompressionOptions {
    fn default() -> Self {
        // The paper's default chunk size.
        CompressionOptions { chunk_size: 256 * 1024 }
    }
}

/// Global (table-level) metadata of one attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnMeta {
    /// The user column: a global dictionary of user ids. Per-chunk data is
    /// the RLE triple array.
    User {
        /// Sorted unique user ids.
        dict: GlobalDict,
    },
    /// A string column: global dictionary (level 1 of the two-level
    /// encoding).
    Str {
        /// Sorted unique values.
        dict: GlobalDict,
    },
    /// An integer column: global `[min, max]` range (level 1 of the
    /// two-level delta encoding).
    Int {
        /// Global minimum.
        min: i64,
        /// Global maximum.
        max: i64,
    },
}

/// The chunk-independent part of a compressed table: schema, per-attribute
/// global metadata (dictionaries / ranges), row count, and compression
/// options.
///
/// This is everything a query needs *before* touching chunk data — predicate
/// compilation, cohort-key resolution, and report decoding all run against
/// `TableMeta` alone, which is what lets a file-backed
/// [`ChunkSource`](crate::source::ChunkSource) plan and prune without
/// materializing a single chunk.
#[derive(Debug, Clone)]
pub struct TableMeta {
    schema: Schema,
    metas: Vec<ColumnMeta>,
    num_rows: usize,
    options: CompressionOptions,
}

impl TableMeta {
    /// Assemble from parts (used by the persistence layer).
    pub(crate) fn new(
        schema: Schema,
        metas: Vec<ColumnMeta>,
        num_rows: usize,
        options: CompressionOptions,
    ) -> Result<Self> {
        if metas.len() != schema.arity() {
            return Err(StorageError::Corrupt("meta count != schema arity".into()));
        }
        let meta = TableMeta { schema, metas, num_rows, options };
        match &meta.metas[meta.schema.user_idx()] {
            ColumnMeta::User { .. } => Ok(meta),
            _ => Err(StorageError::Corrupt("user meta missing at user index".into())),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Compression options used to build the table.
    pub fn options(&self) -> CompressionOptions {
        self.options
    }

    /// Total number of tuples.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Total number of distinct users.
    pub fn num_users(&self) -> usize {
        match &self.metas[self.schema.user_idx()] {
            ColumnMeta::User { dict } => dict.len(),
            _ => unreachable!("user meta at user index"),
        }
    }

    /// Global metadata of an attribute.
    pub fn meta(&self, attr_idx: usize) -> &ColumnMeta {
        &self.metas[attr_idx]
    }

    /// All metas.
    pub fn metas(&self) -> &[ColumnMeta] {
        &self.metas
    }

    /// The global dictionary of a string (or user) attribute.
    pub fn global_dict(&self, attr_idx: usize) -> Option<&GlobalDict> {
        match &self.metas[attr_idx] {
            ColumnMeta::User { dict } | ColumnMeta::Str { dict } => Some(dict),
            ColumnMeta::Int { .. } => None,
        }
    }

    /// Resolve a string to its global id in an attribute's dictionary.
    pub fn lookup_gid(&self, attr_idx: usize, value: &str) -> Option<u32> {
        self.global_dict(attr_idx).and_then(|d| d.lookup(value))
    }

    /// The string for a global id of an attribute.
    pub fn gid_value(&self, attr_idx: usize, gid: u32) -> &Arc<str> {
        self.global_dict(attr_idx).expect("string attribute").value(gid)
    }
}

/// A compressed activity table with every chunk resident in memory.
#[derive(Debug, Clone)]
pub struct CompressedTable {
    meta: TableMeta,
    chunks: Vec<Chunk>,
    index: Vec<ChunkIndexEntry>,
}

impl CompressedTable {
    /// Compress an activity table (§4.1). The input is already in
    /// primary-key order, which provides the clustering and time-ordering
    /// properties the format needs.
    pub fn build(table: &ActivityTable, options: CompressionOptions) -> Result<Self> {
        Self::build_with_metas(table, build_metas(table), options)
    }

    /// Like [`CompressedTable::build`] but encoding against **given**
    /// column metadata instead of metadata derived from the table. The
    /// dictionaries must cover every value in the table (a superset is
    /// fine); integer ranges may be wider than the table's. This is the
    /// incremental-ingest path: a batch is encoded against the dictionaries
    /// *merged* with an existing file's, so its chunks can be appended to
    /// that file without re-encoding anything already on disk.
    pub fn build_with_metas(
        table: &ActivityTable,
        metas: Vec<ColumnMeta>,
        options: CompressionOptions,
    ) -> Result<Self> {
        if options.chunk_size == 0 {
            return Err(StorageError::Invalid("chunk_size must be positive".into()));
        }
        let schema = table.schema().clone();

        // Hash-based value→gid encoders: O(1) per value instead of a
        // binary search in the global dictionary.
        let encoders: Vec<Option<std::collections::HashMap<&str, u32>>> = metas
            .iter()
            .map(|m| match m {
                ColumnMeta::User { dict } | ColumnMeta::Str { dict } => Some(
                    dict.values().iter().enumerate().map(|(i, v)| (v.as_ref(), i as u32)).collect(),
                ),
                ColumnMeta::Int { .. } => None,
            })
            .collect();

        let mut chunks = Vec::new();
        let blocks: Vec<_> = table.user_blocks().collect();
        let mut chunk_start_block = 0usize;
        while chunk_start_block < blocks.len() {
            let first_row = blocks[chunk_start_block].start;
            let mut end_block = chunk_start_block;
            let mut rows = 0usize;
            while end_block < blocks.len() && rows < options.chunk_size {
                rows += blocks[end_block].len;
                end_block += 1;
            }
            let row_range = first_row..first_row + rows;
            chunks.push(build_chunk(table, &schema, &metas, &encoders, row_range)?);
            chunk_start_block = end_block;
        }

        let meta = TableMeta::new(schema, metas, table.num_rows(), options)?;
        let index = chunks.iter().map(|c| ChunkIndexEntry::of_chunk(c, meta.schema())).collect();
        Ok(CompressedTable { meta, chunks, index })
    }

    /// Assemble from parts (persistence path). Validates global row count.
    pub(crate) fn from_parts(
        schema: Schema,
        metas: Vec<ColumnMeta>,
        chunks: Vec<Chunk>,
        num_rows: usize,
        options: CompressionOptions,
    ) -> Result<Self> {
        let meta = TableMeta::new(schema, metas, num_rows, options)?;
        let chunk_rows: usize = chunks.iter().map(|c| c.num_rows()).sum();
        if chunk_rows != num_rows {
            return Err(StorageError::Corrupt(format!(
                "chunks cover {chunk_rows} rows, header claims {num_rows}"
            )));
        }
        let index = chunks.iter().map(|c| ChunkIndexEntry::of_chunk(c, meta.schema())).collect();
        let table = CompressedTable { meta, chunks, index };
        table.validate_consistency()?;
        Ok(table)
    }

    /// Deep consistency check used when loading untrusted images: every
    /// chunk-dictionary id must resolve into the global dictionary, every
    /// packed code into its chunk dictionary, and the RLE user column must
    /// describe contiguous runs covering exactly the chunk's rows. Without
    /// this, a corrupted file could drive decode paths out of bounds.
    pub fn validate_consistency(&self) -> Result<()> {
        for (ci, chunk) in self.chunks.iter().enumerate() {
            validate_chunk(&self.meta, ci, chunk)?;
        }
        Ok(())
    }

    /// The chunk-independent metadata (schema, dictionaries, ranges).
    pub fn table_meta(&self) -> &TableMeta {
        &self.meta
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        self.meta.schema()
    }

    /// Compression options used to build the table.
    pub fn options(&self) -> CompressionOptions {
        self.meta.options()
    }

    /// Total number of tuples.
    pub fn num_rows(&self) -> usize {
        self.meta.num_rows()
    }

    /// Total number of distinct users.
    pub fn num_users(&self) -> usize {
        self.meta.num_users()
    }

    /// The chunks.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Per-chunk index entries (the metadata the executor prunes against and
    /// the v2 persistence footer serializes).
    pub fn index_entries(&self) -> &[ChunkIndexEntry] {
        &self.index
    }

    /// Global metadata of an attribute.
    pub fn meta(&self, attr_idx: usize) -> &ColumnMeta {
        self.meta.meta(attr_idx)
    }

    /// All metas.
    pub fn metas(&self) -> &[ColumnMeta] {
        self.meta.metas()
    }

    /// The global dictionary of a string (or user) attribute.
    pub fn global_dict(&self, attr_idx: usize) -> Option<&GlobalDict> {
        self.meta.global_dict(attr_idx)
    }

    /// Resolve a string to its global id in an attribute's dictionary.
    pub fn lookup_gid(&self, attr_idx: usize, value: &str) -> Option<u32> {
        self.meta.lookup_gid(attr_idx, value)
    }

    /// The string for a global id of an attribute.
    pub fn gid_value(&self, attr_idx: usize, gid: u32) -> &Arc<str> {
        self.meta.gid_value(attr_idx, gid)
    }

    /// Decode one value (slow path, used by tests/decompression).
    pub fn decode_value(&self, chunk_idx: usize, row: usize, attr_idx: usize) -> Value {
        let chunk = &self.chunks[chunk_idx];
        if attr_idx == self.schema().user_idx() {
            let gid = chunk.user_rle().user_at_row(row).expect("row within chunk");
            return Value::Str(self.gid_value(attr_idx, gid).clone());
        }
        match chunk.column_required(attr_idx) {
            col @ ChunkColumn::Str { .. } => {
                Value::Str(self.gid_value(attr_idx, col.gid_at(row)).clone())
            }
            col @ ChunkColumn::Int { .. } => Value::Int(col.int_value(row)),
        }
    }

    /// Fully decompress back to an [`ActivityTable`] (round-trip testing and
    /// export).
    pub fn decompress(&self) -> Result<ActivityTable> {
        let mut builder = TableBuilder::with_capacity(self.schema().clone(), self.num_rows());
        for chunk in &self.chunks {
            for values in chunk_rows(&self.meta, chunk) {
                builder.push(values).map_err(|e| StorageError::Corrupt(e.to_string()))?;
            }
        }
        builder.finish().map_err(|e| StorageError::Corrupt(e.to_string()))
    }
}

/// Decode every row of one fully materialized chunk back into values, in
/// storage order (shared by [`CompressedTable::decompress`] and the append
/// path, which must re-encode the chunks of returning users).
pub(crate) fn chunk_rows(meta: &TableMeta, chunk: &Chunk) -> Vec<Vec<Value>> {
    let schema = meta.schema();
    let user_idx = schema.user_idx();
    let n = chunk.num_rows();
    // Block-decode every column once (one `unpack_range` sweep — the SIMD
    // lane path for narrow widths) instead of a per-row, per-attribute
    // packed-word probe; the row loop below then just assembles values.
    let mut cols: Vec<Option<(&ChunkColumn, Vec<u64>)>> = Vec::with_capacity(schema.arity());
    for attr in 0..schema.arity() {
        if attr == user_idx {
            cols.push(None);
            continue;
        }
        let col = chunk.column_required(attr);
        let mut codes = vec![0u64; n];
        col.packed().unpack_range(0, n, &mut codes);
        cols.push(Some((col, codes)));
    }
    let mut out = Vec::with_capacity(n);
    for run in chunk.user_rle().runs() {
        let user = meta.gid_value(user_idx, run.user_gid).clone();
        for row in run.first as usize..(run.first + run.count) as usize {
            let mut values = Vec::with_capacity(schema.arity());
            for (attr, col) in cols.iter().enumerate() {
                let Some((col, codes)) = col else {
                    values.push(Value::Str(user.clone()));
                    continue;
                };
                values.push(match col {
                    ChunkColumn::Str { dict, .. } => {
                        Value::Str(meta.gid_value(attr, dict.global_id(codes[row] as u32)).clone())
                    }
                    ChunkColumn::Int { min, .. } => Value::Int(min + codes[row] as i64),
                });
            }
            out.push(values);
        }
    }
    out
}

/// Validate one chunk against the table-level metadata: the RLE user column
/// must describe contiguous runs covering exactly the chunk's rows with
/// in-range user gids; chunk-dictionary ids must resolve into the global
/// dictionary; packed codes/deltas must stay within their chunk dictionary /
/// range. Shared between the eager [`CompressedTable::validate_consistency`]
/// pass and the lazy per-chunk decode of
/// [`FileSource`](crate::source::FileSource). Every non-user column must be
/// materialized; partial chunks validate each piece as it is decoded with
/// [`validate_rle`] / [`validate_column`] instead.
pub(crate) fn validate_chunk(meta: &TableMeta, ci: usize, chunk: &Chunk) -> Result<()> {
    validate_rle(meta, ci, chunk.user_rle(), chunk.num_rows())?;
    let user_idx = meta.schema().user_idx();
    for (idx, col) in chunk.columns().iter().enumerate() {
        match col {
            None if idx == user_idx => {}
            None => {
                return Err(StorageError::Corrupt(format!(
                    "chunk {ci}: column {idx}: segment missing"
                )))
            }
            Some(col) => validate_column(meta, ci, idx, col)?,
        }
    }
    Ok(())
}

/// Validate an RLE user column on its own: contiguous runs, in-range user
/// gids, counts covering exactly `num_rows` rows.
pub(crate) fn validate_rle(
    meta: &TableMeta,
    ci: usize,
    rle: &crate::rle::UserRle,
    num_rows: usize,
) -> Result<()> {
    let user_idx = meta.schema().user_idx();
    let user_dict_len = match meta.meta(user_idx) {
        ColumnMeta::User { dict } => dict.len() as u64,
        _ => return Err(StorageError::Corrupt("user meta missing at user index".into())),
    };
    let corrupt = |msg: String| StorageError::Corrupt(format!("chunk {ci}: {msg}"));
    let mut expected_first = 0u64;
    for run in rle.runs() {
        if (run.user_gid as u64) >= user_dict_len {
            return Err(corrupt(format!("user gid {} out of range", run.user_gid)));
        }
        if run.first as u64 != expected_first || run.count == 0 {
            return Err(corrupt("user runs not contiguous".into()));
        }
        expected_first += run.count as u64;
    }
    if expected_first != num_rows as u64 {
        return Err(corrupt("user runs do not cover chunk rows".into()));
    }
    Ok(())
}

/// Validate one column segment on its own: chunk dict ids within the global
/// dictionary, codes within the chunk dictionary, deltas within the chunk
/// range, and the segment kind agreeing with the attribute's metadata.
pub(crate) fn validate_column(
    meta: &TableMeta,
    ci: usize,
    idx: usize,
    col: &ChunkColumn,
) -> Result<()> {
    let corrupt = |msg: String| StorageError::Corrupt(format!("chunk {ci}: {msg}"));
    match (col, meta.meta(idx)) {
        (ChunkColumn::Str { dict, codes }, ColumnMeta::Str { dict: global }) => {
            if let Some(&max_gid) = dict.global_ids().last() {
                if (max_gid as usize) >= global.len() {
                    return Err(corrupt(format!(
                        "column {idx}: chunk dict gid {max_gid} out of range"
                    )));
                }
            }
            let dict_len = dict.len() as u64;
            if codes.iter().any(|c| c >= dict_len) {
                return Err(corrupt(format!("column {idx}: code out of range")));
            }
            Ok(())
        }
        (ChunkColumn::Int { min, max, deltas }, ColumnMeta::Int { .. }) => {
            if min > max {
                return Err(corrupt(format!("column {idx}: min > max")));
            }
            let span = max.wrapping_sub(*min) as u64;
            if deltas.iter().any(|d| d > span) {
                return Err(corrupt(format!("column {idx}: delta out of range")));
            }
            Ok(())
        }
        _ => Err(corrupt(format!("column {idx}: segment kind disagrees with metadata"))),
    }
}

fn build_metas(table: &ActivityTable) -> Vec<ColumnMeta> {
    table
        .schema()
        .attributes()
        .iter()
        .enumerate()
        .map(|(idx, attr)| match (attr.role, attr.vtype) {
            (AttributeRole::User, _) => {
                ColumnMeta::User { dict: GlobalDict::build(table.distinct_strings(idx)) }
            }
            (_, ValueType::Str) => {
                ColumnMeta::Str { dict: GlobalDict::build(table.distinct_strings(idx)) }
            }
            (_, ValueType::Int) => {
                let (min, max) = table.int_range(idx).unwrap_or((0, 0));
                ColumnMeta::Int { min, max }
            }
        })
        .collect()
}

fn build_chunk(
    table: &ActivityTable,
    schema: &Schema,
    metas: &[ColumnMeta],
    encoders: &[Option<std::collections::HashMap<&str, u32>>],
    rows: std::ops::Range<usize>,
) -> Result<Chunk> {
    let user_idx = schema.user_idx();
    let missing = |idx: usize, value: &str| {
        StorageError::Invalid(format!(
            "value {value:?} of attribute {idx} is not covered by the provided dictionary"
        ))
    };
    let user_enc = encoders[user_idx].as_ref().expect("user encoder");
    let user_gids: Vec<u32> = rows
        .clone()
        .map(|r| {
            let u = table.rows()[r].get(user_idx).as_str().expect("user is a string");
            user_enc.get(u).copied().ok_or_else(|| missing(user_idx, u))
        })
        .collect::<Result<_>>()?;
    let user_rle = UserRle::from_rows(&user_gids);

    let mut columns: Vec<Option<ChunkColumn>> = Vec::with_capacity(schema.arity());
    for (idx, meta) in metas.iter().enumerate() {
        if idx == user_idx {
            columns.push(None);
            continue;
        }
        match meta {
            ColumnMeta::Str { .. } => {
                let enc = encoders[idx].as_ref().expect("string encoder");
                let gids: Vec<u32> = rows
                    .clone()
                    .map(|r| {
                        let s = table.rows()[r].get(idx).as_str().expect("string attribute");
                        enc.get(s).copied().ok_or_else(|| missing(idx, s))
                    })
                    .collect::<Result<_>>()?;
                columns.push(Some(ChunkColumn::from_gids(&gids)));
            }
            ColumnMeta::Int { .. } => {
                let vals: Vec<i64> = rows
                    .clone()
                    .map(|r| table.rows()[r].get(idx).as_int().expect("int attribute"))
                    .collect();
                columns.push(Some(ChunkColumn::from_ints(&vals)));
            }
            ColumnMeta::User { .. } => unreachable!("only one user column"),
        }
    }
    Chunk::new(user_rle, columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig};

    fn sample() -> ActivityTable {
        generate(&GeneratorConfig::small())
    }

    #[test]
    fn roundtrip_decompress() {
        let t = sample();
        let c = CompressedTable::build(&t, CompressionOptions::default()).unwrap();
        let back = c.decompress().unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        assert_eq!(back.rows(), t.rows());
    }

    #[test]
    fn users_never_split_across_chunks() {
        let t = sample();
        // Tiny chunks force many chunk boundaries.
        let c = CompressedTable::build(&t, CompressionOptions::with_chunk_size(64)).unwrap();
        assert!(c.chunks().len() > 1, "expected multiple chunks");
        let mut seen = std::collections::HashSet::new();
        for chunk in c.chunks() {
            for run in chunk.user_rle().runs() {
                assert!(seen.insert(run.user_gid), "user {} split across chunks", run.user_gid);
            }
        }
        assert_eq!(seen.len(), c.num_users());
    }

    #[test]
    fn chunk_size_trades_chunk_count() {
        let t = sample();
        let small = CompressedTable::build(&t, CompressionOptions::with_chunk_size(128)).unwrap();
        let large =
            CompressedTable::build(&t, CompressionOptions::with_chunk_size(1 << 20)).unwrap();
        assert!(small.chunks().len() > large.chunks().len());
        assert_eq!(large.chunks().len(), 1);
    }

    #[test]
    fn smaller_chunks_use_fewer_bits_per_value() {
        // Fewer users per chunk -> smaller chunk dictionaries -> narrower
        // codes. Payload bytes (excluding per-chunk dictionary overhead)
        // should not grow when chunks shrink; the paper's Figure 7 shows
        // total size growing with chunk size.
        let t = generate(&GeneratorConfig::new(300));
        let small = CompressedTable::build(&t, CompressionOptions::with_chunk_size(256)).unwrap();
        let large =
            CompressedTable::build(&t, CompressionOptions::with_chunk_size(1 << 20)).unwrap();
        let code_bytes = |ct: &CompressedTable| -> usize {
            ct.chunks()
                .iter()
                .map(|ch| {
                    ch.columns()
                        .iter()
                        .flatten()
                        .map(|c| match &**c {
                            ChunkColumn::Str { codes, .. } => codes.packed_bytes(),
                            ChunkColumn::Int { deltas, .. } => deltas.packed_bytes(),
                        })
                        .sum::<usize>()
                })
                .sum()
        };
        assert!(code_bytes(&small) <= code_bytes(&large));
    }

    #[test]
    fn lookup_and_decode() {
        let t = sample();
        let c = CompressedTable::build(&t, CompressionOptions::default()).unwrap();
        let aidx = t.schema().action_idx();
        let gid = c.lookup_gid(aidx, "launch").expect("launch exists");
        assert_eq!(c.gid_value(aidx, gid).as_ref(), "launch");
        assert_eq!(c.lookup_gid(aidx, "no-such-action"), None);
    }

    #[test]
    fn rejects_zero_chunk_size() {
        let t = sample();
        assert!(CompressedTable::build(&t, CompressionOptions::with_chunk_size(0)).is_err());
    }

    #[test]
    fn empty_table_compresses() {
        let t = cohana_activity::TableBuilder::new(Schema::game_actions()).finish().unwrap();
        let c = CompressedTable::build(&t, CompressionOptions::default()).unwrap();
        assert_eq!(c.num_rows(), 0);
        assert_eq!(c.chunks().len(), 0);
        assert_eq!(c.decompress().unwrap().num_rows(), 0);
    }
}
