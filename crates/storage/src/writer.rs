//! Incremental ingest: buffering activity batches and growing persisted
//! tables.
//!
//! [`TableWriter`] is the write-side companion of the read-oriented
//! [`CompressedTable`]: it accumulates incoming
//! [`ActivityTable`] batches (which arrive in arbitrary interleavings as
//! live traffic), re-sorts them into the paper's §3 `(user, time, action)`
//! primary order, and encodes them into chunk-sized runs — either as a fresh
//! standalone table ([`TableWriter::build`]) or appended onto an existing v3
//! file ([`TableWriter::append_to`], which drives
//! [`persist::append`]). Buffering several batches
//! before flushing amortizes the per-append footer rewrite and produces
//! fuller chunks.

use crate::persist::{self, AppendStats};
use crate::table::{CompressedTable, CompressionOptions};
use crate::{Result, StorageError};
use cohana_activity::{ActivityTable, Schema, TableBuilder, Value};
use std::path::Path;

/// Buffers activity batches and encodes them into chunk-sized runs.
#[derive(Debug)]
pub struct TableWriter {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl TableWriter {
    /// An empty writer for the given schema.
    pub fn new(schema: Schema) -> Self {
        TableWriter { schema, rows: Vec::new() }
    }

    /// The schema every pushed batch must match.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Buffer one batch. The batch may overlap in time and users with
    /// anything buffered before — ordering is restored when the writer
    /// flushes.
    pub fn push_batch(&mut self, batch: &ActivityTable) -> Result<()> {
        if batch.schema() != &self.schema {
            return Err(StorageError::Invalid(
                "batch schema differs from the writer's schema".into(),
            ));
        }
        self.rows.extend(batch.rows().iter().map(|r| r.values().to_vec()));
        Ok(())
    }

    /// Buffer one raw row (arity and types are validated on flush).
    pub fn push_row(&mut self, values: Vec<Value>) {
        self.rows.push(values);
    }

    /// Number of buffered rows.
    pub fn buffered_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Drain the buffer into one primary-key-sorted [`ActivityTable`],
    /// rejecting duplicate keys and type mismatches. The writer is left
    /// empty and reusable.
    pub fn take_batch(&mut self) -> Result<ActivityTable> {
        let mut builder = TableBuilder::with_capacity(self.schema.clone(), self.rows.len());
        for values in self.rows.drain(..) {
            builder.push(values).map_err(|e| StorageError::Invalid(e.to_string()))?;
        }
        builder.finish().map_err(|e| StorageError::Invalid(e.to_string()))
    }

    /// Drain the buffer and encode it as a standalone compressed table
    /// (chunk-sized runs of whole users, like
    /// [`CompressedTable::build`]).
    pub fn build(&mut self, options: CompressionOptions) -> Result<CompressedTable> {
        let table = self.take_batch()?;
        CompressedTable::build(&table, options)
    }

    /// Drain the buffer and append it onto an existing v3 file (see
    /// [`persist::append`] for the on-disk mechanics, dictionary epochs, and
    /// the returning-user rewrite).
    pub fn append_to(&mut self, path: &Path) -> Result<AppendStats> {
        let batch = self.take_batch()?;
        persist::append(path, &batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cohana_activity::{generate, GeneratorConfig};

    #[test]
    fn writer_sorts_interleaved_batches() {
        let table = generate(&GeneratorConfig::small());
        let mut w = TableWriter::new(table.schema().clone());
        // Push the rows back-to-front in two batches; the writer restores
        // primary-key order.
        let rows = table.rows();
        let (a, b) = rows.split_at(rows.len() / 2);
        for part in [b, a] {
            for r in part.iter().rev() {
                w.push_row(r.values().to_vec());
            }
        }
        assert_eq!(w.buffered_rows(), table.num_rows());
        let sorted = w.take_batch().unwrap();
        assert_eq!(sorted.rows(), table.rows());
        assert!(w.is_empty(), "take_batch drains the buffer");
    }

    #[test]
    fn writer_build_matches_direct_build() {
        let table = generate(&GeneratorConfig::small());
        let mut w = TableWriter::new(table.schema().clone());
        w.push_batch(&table).unwrap();
        let built = w.build(CompressionOptions::with_chunk_size(256)).unwrap();
        let direct =
            CompressedTable::build(&table, CompressionOptions::with_chunk_size(256)).unwrap();
        assert_eq!(built.chunks(), direct.chunks());
        assert_eq!(built.metas(), direct.metas());
    }

    #[test]
    fn writer_rejects_foreign_schema_and_duplicates() {
        let table = generate(&GeneratorConfig::small());
        use cohana_activity::{Attribute, AttributeRole, ValueType};
        let mut w = TableWriter::new(Schema::game_actions());
        let tiny = Schema::new(vec![
            Attribute::new("u", ValueType::Str, AttributeRole::User),
            Attribute::new("t", ValueType::Int, AttributeRole::Time),
            Attribute::new("a", ValueType::Str, AttributeRole::Action),
        ])
        .unwrap();
        let empty = TableBuilder::new(tiny).finish().unwrap();
        assert!(matches!(w.push_batch(&empty).unwrap_err(), StorageError::Invalid(_)));

        w.push_row(table.rows()[0].values().to_vec());
        w.push_row(table.rows()[0].values().to_vec());
        assert!(matches!(w.take_batch().unwrap_err(), StorageError::Invalid(_)));
    }
}
