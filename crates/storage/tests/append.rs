//! Integration tests for incremental ingest at the storage layer: appending
//! batches to v3/v4 files (preserving each file's format version),
//! dictionary-epoch remapping, refresh-based cache invalidation, and
//! compaction.

use cohana_activity::{generate, ActivityTable, GeneratorConfig, TableBuilder};
use cohana_storage::{
    persist, ChunkSource, CompressedTable, CompressionOptions, FileSource, StorageError,
    TableWriter,
};
use std::path::PathBuf;

const CHUNK: usize = 256;

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("cohana-append-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn base_table() -> ActivityTable {
    generate(&GeneratorConfig::small())
}

/// Split a table's rows into `k` batches by a row-index round-robin over
/// users (no user spans batches).
fn split_by_user(table: &ActivityTable, k: usize) -> Vec<ActivityTable> {
    let mut builders: Vec<TableBuilder> =
        (0..k).map(|_| TableBuilder::new(table.schema().clone())).collect();
    for (bi, block) in table.user_blocks().enumerate() {
        for row in block.range() {
            builders[bi % k].push(table.rows()[row].values().to_vec()).unwrap();
        }
    }
    builders.into_iter().map(|b| b.finish().unwrap()).collect()
}

/// Split a table's rows into `k` contiguous time slices: users active across
/// the whole observation window return in every later batch.
fn split_by_time(table: &ActivityTable, k: usize) -> Vec<ActivityTable> {
    let tidx = table.schema().time_idx();
    let mut order: Vec<usize> = (0..table.num_rows()).collect();
    order.sort_by_key(|&r| table.rows()[r].get(tidx).as_int().unwrap());
    let per = table.num_rows().div_ceil(k);
    order
        .chunks(per)
        .map(|rows| {
            let mut b = TableBuilder::new(table.schema().clone());
            for &r in rows {
                b.push(table.rows()[r].values().to_vec()).unwrap();
            }
            b.finish().unwrap()
        })
        .collect()
}

/// Write the first batch as a fresh v3 file, append the rest, and return the
/// path plus the per-append stats.
fn build_by_appends(name: &str, batches: &[ActivityTable]) -> (PathBuf, Vec<persist::AppendStats>) {
    let path = temp_path(name);
    let first =
        CompressedTable::build(&batches[0], CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    persist::write_file(&first, &path).unwrap();
    let stats = batches[1..].iter().map(|b| persist::append(&path, b).unwrap()).collect();
    (path, stats)
}

#[test]
fn user_sliced_appends_never_rewrite_and_roundtrip() {
    let table = base_table();
    let batches = split_by_user(&table, 3);
    let (path, stats) = build_by_appends("user-sliced.cohana", &batches);
    for s in &stats {
        assert_eq!(s.chunks_rewritten, 0, "user-disjoint batches are pure appends");
        assert!(s.bytes_appended > 0);
        assert!(s.dead_bytes > 0, "superseded footers become dead bytes");
    }
    // Eager read-back decompresses to exactly the build-once table.
    let eager = persist::read_file(&path).unwrap();
    assert_eq!(eager.decompress().unwrap().rows(), table.rows());
    // Merged dictionaries equal the build-once dictionaries (sorted, no
    // gid drift).
    let once = CompressedTable::build(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    assert_eq!(eager.metas(), once.metas());
    std::fs::remove_file(&path).ok();
}

#[test]
fn time_sliced_appends_rewrite_returning_users_and_roundtrip() {
    let table = base_table();
    let batches = split_by_time(&table, 4);
    let (path, stats) = build_by_appends("time-sliced.cohana", &batches);
    assert!(
        stats.iter().any(|s| s.chunks_rewritten > 0),
        "time slices revisit users, forcing chunk rewrites"
    );
    let eager = persist::read_file(&path).unwrap();
    assert_eq!(eager.decompress().unwrap().rows(), table.rows());
    // No user is split across chunks — the §4.1 invariant survives appends.
    let mut seen = std::collections::HashSet::new();
    for chunk in eager.chunks() {
        for run in chunk.user_rle().runs() {
            assert!(seen.insert(run.user_gid), "user {} split across chunks", run.user_gid);
        }
    }
    // The lazy path agrees with the eager one, chunk by chunk.
    let src = FileSource::open(&path).unwrap();
    assert_eq!(src.num_chunks(), eager.chunks().len());
    for i in 0..src.num_chunks() {
        assert_eq!(&*src.chunk(i).unwrap(), &eager.chunks()[i]);
        assert_eq!(src.index_entry(i), &eager.index_entries()[i]);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn table_writer_appends_buffered_batches() {
    let table = base_table();
    let batches = split_by_time(&table, 3);
    let path = temp_path("writer.cohana");
    let mut w = TableWriter::new(table.schema().clone());
    w.push_batch(&batches[0]).unwrap();
    persist::write_file(&w.build(CompressionOptions::with_chunk_size(CHUNK)).unwrap(), &path)
        .unwrap();
    // Buffer the remaining batches and flush them in one append.
    for b in &batches[1..] {
        w.push_batch(b).unwrap();
    }
    let stats = w.append_to(&path).unwrap();
    assert_eq!(stats.rows_appended, batches[1..].iter().map(|b| b.num_rows()).sum::<usize>());
    assert!(w.is_empty());
    let eager = persist::read_file(&path).unwrap();
    assert_eq!(eager.decompress().unwrap().rows(), table.rows());
    std::fs::remove_file(&path).ok();
}

#[test]
fn append_onto_empty_file() {
    let schema = base_table().schema().clone();
    let empty = TableBuilder::new(schema).finish().unwrap();
    let path = temp_path("from-empty.cohana");
    let c = CompressedTable::build(&empty, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    persist::write_file(&c, &path).unwrap();

    let table = base_table();
    let stats = persist::append(&path, &table).unwrap();
    assert_eq!(stats.chunks_before, 0);
    assert!(stats.chunks_after > 0);
    let eager = persist::read_file(&path).unwrap();
    assert_eq!(eager.decompress().unwrap().rows(), table.rows());
    std::fs::remove_file(&path).ok();
}

#[test]
fn empty_batch_append_is_a_noop() {
    let table = base_table();
    let path = temp_path("noop.cohana");
    let c = CompressedTable::build(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    persist::write_file(&c, &path).unwrap();
    let before = std::fs::read(&path).unwrap();
    let empty = TableBuilder::new(table.schema().clone()).finish().unwrap();
    let stats = persist::append(&path, &empty).unwrap();
    assert_eq!(stats.rows_appended, 0);
    assert_eq!(stats.chunks_before, stats.chunks_after);
    assert_eq!(std::fs::read(&path).unwrap(), before, "no bytes written");
    std::fs::remove_file(&path).ok();
}

#[test]
fn append_rejects_v1_and_v2_files() {
    let table = base_table();
    let c = CompressedTable::build(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    for (name, bytes) in [
        ("reject-v1.cohana", persist::to_bytes_v1(&c)),
        ("reject-v2.cohana", persist::to_bytes_v2(&c)),
    ] {
        let path = temp_path(name);
        std::fs::write(&path, &bytes).unwrap();
        let before = std::fs::read(&path).unwrap();
        let err = persist::append(&path, &table).unwrap_err();
        match &err {
            StorageError::Unsupported(msg) => {
                assert!(msg.contains("re-save"), "error should carry a migration hint: {msg}")
            }
            other => panic!("expected Unsupported, got {other:?}"),
        }
        // A rejected append must not touch the file.
        assert_eq!(std::fs::read(&path).unwrap(), before);
        assert!(matches!(persist::compact(&path).unwrap_err(), StorageError::Unsupported(_)));
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn append_rejects_duplicate_keys_and_foreign_schema() {
    let table = base_table();
    let path = temp_path("conflict.cohana");
    let c = CompressedTable::build(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    persist::write_file(&c, &path).unwrap();
    // Re-appending the same rows collides on every primary key.
    assert!(matches!(persist::append(&path, &table).unwrap_err(), StorageError::Invalid(_)));
    std::fs::remove_file(&path).ok();
}

#[test]
fn refresh_picks_up_appends_without_serving_stale_segments() {
    let table = base_table();
    let batches = split_by_time(&table, 2);
    let path = temp_path("refresh.cohana");
    let first =
        CompressedTable::build(&batches[0], CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    persist::write_file(&first, &path).unwrap();

    let mut src = FileSource::open(&path).unwrap();
    // Warm the cache with every chunk, then grow the file behind the source.
    for i in 0..src.num_chunks() {
        src.chunk(i).unwrap();
    }
    let chunks_before = src.num_chunks();
    persist::append(&path, &batches[1]).unwrap();

    // Until refresh, the source still serves its open-time snapshot.
    assert_eq!(src.num_chunks(), chunks_before);
    assert_eq!(src.table_meta().num_rows(), batches[0].num_rows());

    let stats = src.refresh().unwrap();
    assert_eq!(stats.chunks_before, chunks_before);
    assert_eq!(stats.chunks_after, src.num_chunks());
    assert!(stats.segments_invalidated > 0, "rewritten/re-based segments must drop");
    assert_eq!(src.table_meta().num_rows(), table.num_rows());

    // Every chunk served after the refresh matches the eager read of the
    // appended file — nothing stale survives.
    let eager = persist::read_file(&path).unwrap();
    assert_eq!(src.num_chunks(), eager.chunks().len());
    for i in 0..src.num_chunks() {
        assert_eq!(&*src.chunk(i).unwrap(), &eager.chunks()[i], "chunk {i} diverges");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn refresh_after_compact_switches_to_the_new_image() {
    let table = base_table();
    let batches = split_by_time(&table, 3);
    let (path, _) = build_by_appends("refresh-compact.cohana", &batches);
    let mut src = FileSource::open(&path).unwrap();
    for i in 0..src.num_chunks() {
        src.chunk(i).unwrap();
    }
    let warm_chunks = src.num_chunks();
    let arity = persist::read_file(&path).unwrap().schema().arity();
    persist::compact(&path).unwrap();
    let stats = src.refresh().unwrap();
    // Compaction replaces the inode; byte locations mean nothing across the
    // rewrite, so *every* cached segment (RLE + each non-user column per
    // chunk) must drop, even where offsets happen to coincide.
    assert_eq!(stats.segments_invalidated, warm_chunks * arity);
    let eager = persist::read_file(&path).unwrap();
    assert_eq!(src.num_chunks(), eager.chunks().len());
    for i in 0..src.num_chunks() {
        assert_eq!(&*src.chunk(i).unwrap(), &eager.chunks()[i]);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn compact_reclaims_dead_bytes_and_restores_build_once_image() {
    let table = base_table();
    let batches = split_by_time(&table, 4);
    let (path, stats) = build_by_appends("compact.cohana", &batches);
    let appended_size = std::fs::metadata(&path).unwrap().len();
    assert!(stats.last().unwrap().dead_bytes > 0);

    let cstats = persist::compact(&path).unwrap();
    assert_eq!(cstats.bytes_before, appended_size);
    assert_eq!(cstats.rows, table.num_rows());
    assert!(cstats.reclaimed_bytes > 0, "compaction reclaims dead bytes");
    assert!(cstats.bytes_after < cstats.bytes_before);

    // Compaction restores the exact build-once image: same primary order,
    // same chunking, same dictionaries, same codec selections — byte for
    // byte, in the current (v4) format.
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[4..8], 4u32.to_le_bytes());
    let once = CompressedTable::build(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    assert_eq!(bytes, persist::to_bytes(&once).to_vec());
    std::fs::remove_file(&path).ok();
}

#[test]
fn v3_files_grow_in_v3_and_compact_migrates_them_to_v4() {
    let table = base_table();
    let batches = split_by_time(&table, 3);
    let path = temp_path("v3-migrate.cohana");
    let first =
        CompressedTable::build(&batches[0], CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    std::fs::write(&path, persist::to_bytes_v3(&first)).unwrap();

    // Appends keep the file in its own version: new blobs are written raw
    // and the grown file still opens as v3.
    for b in &batches[1..] {
        persist::append(&path, b).unwrap();
        assert_eq!(&std::fs::read(&path).unwrap()[4..8], 3u32.to_le_bytes());
    }
    let eager = persist::read_file(&path).unwrap();
    assert_eq!(eager.decompress().unwrap().rows(), table.rows());

    // Compact rewrites in the current version — the v3 → v4 migration path
    // — and lands on the exact v4 build-once image.
    persist::compact(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    assert_eq!(&bytes[4..8], 4u32.to_le_bytes());
    let once = CompressedTable::build(&table, CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    assert_eq!(bytes, persist::to_bytes(&once).to_vec());
    std::fs::remove_file(&path).ok();
}

#[test]
fn v4_appends_match_v3_appends_decoded() {
    // The same batch sequence ingested into a v3 and a v4 file must decode
    // to identical chunks — the codec layer changes bytes on disk, never
    // the decoded table.
    let table = base_table();
    let batches = split_by_time(&table, 3);
    let first =
        CompressedTable::build(&batches[0], CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    let v3_path = temp_path("parity-v3.cohana");
    let v4_path = temp_path("parity-v4.cohana");
    std::fs::write(&v3_path, persist::to_bytes_v3(&first)).unwrap();
    std::fs::write(&v4_path, persist::to_bytes(&first)).unwrap();
    for b in &batches[1..] {
        persist::append(&v3_path, b).unwrap();
        persist::append(&v4_path, b).unwrap();
    }
    let v3 = persist::read_file(&v3_path).unwrap();
    let v4 = persist::read_file(&v4_path).unwrap();
    assert_eq!(v3.chunks(), v4.chunks());
    assert_eq!(v3.metas(), v4.metas());
    std::fs::remove_file(&v3_path).ok();
    std::fs::remove_file(&v4_path).ok();
}

#[test]
fn open_snapshot_survives_append_and_compact() {
    let table = base_table();
    let batches = split_by_time(&table, 2);
    let path = temp_path("snapshot.cohana");
    let first =
        CompressedTable::build(&batches[0], CompressionOptions::with_chunk_size(CHUNK)).unwrap();
    persist::write_file(&first, &path).unwrap();

    let src = FileSource::open(&path).unwrap();
    persist::append(&path, &batches[1]).unwrap();
    persist::compact(&path).unwrap();
    // The old handle still reads the pre-append image: the append left the
    // old footer's bytes untouched and the compact replaced the path via
    // rename, keeping the old inode alive through the open fd.
    assert_eq!(src.table_meta().num_rows(), batches[0].num_rows());
    for i in 0..src.num_chunks() {
        assert_eq!(&*src.chunk(i).unwrap(), &first.chunks()[i]);
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_appended_file_reports_named_corruption() {
    let table = base_table();
    let batches = split_by_time(&table, 2);
    let (path, _) = build_by_appends("truncated.cohana", &batches);
    let bytes = std::fs::read(&path).unwrap();
    // A tail whose footer length reaches past the start of the file must
    // name the impossible offset, not panic or report a bare UnexpectedEof.
    let mut crafted = bytes.clone();
    let tail = crafted.len() - 12;
    crafted[tail..tail + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    match persist::from_bytes(&crafted).unwrap_err() {
        StorageError::Corrupt(msg) => {
            assert!(msg.contains("would start at offset"), "unhelpful message: {msg}")
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // Any truncation of an appended image errors cleanly (the tail magic or
    // the footer bounds catch it), never panics.
    for cut in [bytes.len() - 1, bytes.len() - 13, bytes.len() / 2, 9] {
        assert!(persist::from_bytes(&bytes[..cut]).is_err(), "cut at {cut} should fail");
    }
    std::fs::remove_file(&path).ok();
}
