//! Robustness: deserializing corrupted or truncated table images must fail
//! gracefully (an `Err`, never a panic, never an out-of-bounds read).

use cohana_activity::{generate, GeneratorConfig};
use cohana_storage::persist::{from_bytes, to_bytes};
use cohana_storage::{CompressedTable, CompressionOptions};
use proptest::prelude::*;

fn image() -> Vec<u8> {
    let t = generate(&GeneratorConfig::small());
    let c = CompressedTable::build(&t, CompressionOptions::with_chunk_size(256)).unwrap();
    to_bytes(&c).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_single_byte_flip_never_panics(pos in 0usize..60_000, xor in 1u8..=255) {
        let mut bytes = image();
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // Either it still parses (the flip hit padding/payload that decodes
        // to different values) or it errors; both are fine. Any panic fails
        // the test.
        if let Ok(table) = from_bytes(&bytes) {
            // A successfully parsed table must stay internally
            // consistent enough to decompress or cleanly error.
            let _ = table.decompress();
        }
    }

    #[test]
    fn random_truncation_never_panics(cut_fraction in 0.0f64..1.0) {
        let bytes = image();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assert!(from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn random_garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2_000)) {
        let _ = from_bytes(&garbage);
    }
}

#[test]
fn valid_image_roundtrips() {
    let bytes = image();
    let table = from_bytes(&bytes).unwrap();
    assert!(table.num_rows() > 0);
}
