//! Robustness: deserializing corrupted or truncated table images must fail
//! gracefully (an `Err`, never a panic, never an out-of-bounds read) — for
//! the legacy v1 eager blobs, the v2 whole-chunk footer-indexed format, and
//! the v3/v4 column-addressable formats (v4 adds per-blob codec tags and
//! uncompressed lengths), on both the eager (`from_bytes`) and lazy
//! (`FileSource`, whole-chunk and projected per-column) read paths.

use cohana_activity::{generate, GeneratorConfig};
use cohana_storage::persist::{from_bytes, to_bytes, to_bytes_v1, to_bytes_v2, to_bytes_v3};
use cohana_storage::{ChunkSource, CompressedTable, CompressionOptions, FileSource};
use proptest::prelude::*;

fn compressed() -> CompressedTable {
    let t = generate(&GeneratorConfig::small());
    CompressedTable::build(&t, CompressionOptions::with_chunk_size(256)).unwrap()
}

/// A serialized image in the requested format version.
fn image(version: u32) -> Vec<u8> {
    let c = compressed();
    match version {
        1 => to_bytes_v1(&c).to_vec(),
        2 => to_bytes_v2(&c).to_vec(),
        3 => to_bytes_v3(&c).to_vec(),
        4 => to_bytes(&c).to_vec(),
        v => panic!("no writer for version {v}"),
    }
}

/// Open `bytes` as a temp file with a lazy `FileSource` and touch every
/// chunk — once fully and once through a narrow projection; any outcome but
/// a panic is fine.
fn exercise_lazy(bytes: &[u8], tag: &str) {
    let dir = std::env::temp_dir().join("cohana-corruption-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("corrupt-{tag}-{:x}.cohana", bytes.len()));
    std::fs::write(&path, bytes).unwrap();
    if let Ok(src) = FileSource::open(&path) {
        let time_idx = src.table_meta().schema().time_idx();
        for i in 0..src.num_chunks() {
            let _ = src.chunk(i);
            let _ = src.chunk_columns(i, &[time_idx]);
        }
    }
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_single_byte_flip_never_panics(
        version in prop::sample::select(vec![1u32, 2, 3, 4]),
        pos in 0usize..60_000,
        xor in 1u8..=255,
    ) {
        let mut bytes = image(version);
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // Either it still parses (the flip hit padding/payload that decodes
        // to different values) or it errors; both are fine. Any panic fails
        // the test.
        if let Ok(table) = from_bytes(&bytes) {
            // A successfully parsed table must stay internally
            // consistent enough to decompress or cleanly error.
            let _ = table.decompress();
        }
        if version >= 2 {
            exercise_lazy(&bytes, "flip");
        }
    }

    #[test]
    fn random_truncation_never_panics(
        version in prop::sample::select(vec![1u32, 2, 3, 4]),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = image(version);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assert!(from_bytes(&bytes[..cut]).is_err());
        if version >= 2 {
            exercise_lazy(&bytes[..cut], "cut");
        }
    }

    #[test]
    fn random_garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2_000)) {
        let _ = from_bytes(&garbage);
        exercise_lazy(&garbage, "garbage");
    }
}

#[test]
fn valid_images_roundtrip_every_version() {
    for version in [1, 2, 3, 4] {
        let bytes = image(version);
        let table = from_bytes(&bytes).unwrap();
        assert!(table.num_rows() > 0, "v{version}");
        assert_eq!(table.decompress().unwrap().num_rows(), table.num_rows(), "v{version}");
    }
}

#[test]
fn bad_magic_rejected_every_version() {
    for version in [1, 2, 3, 4] {
        let mut bytes = image(version);
        bytes[0] ^= 0xFF;
        assert!(from_bytes(&bytes).is_err(), "v{version}");
    }
}

#[test]
fn footer_past_eof_names_the_offset_every_footered_version() {
    // A tail claiming a footer longer than the file (the signature of a
    // truncated or torn-append image) must produce a corruption error that
    // names the impossible offset — not a bare UnexpectedEof, and never a
    // slice panic. Both the eager and the lazy open paths report it.
    use cohana_storage::StorageError;
    for version in [2, 3, 4] {
        let mut bytes = image(version);
        let tail = bytes.len() - 12;
        let bogus_len = bytes.len() as u64 * 2;
        bytes[tail..tail + 8].copy_from_slice(&bogus_len.to_le_bytes());
        match from_bytes(&bytes).unwrap_err() {
            StorageError::Corrupt(msg) => {
                assert!(msg.contains("would start at offset"), "v{version}: weak message: {msg}")
            }
            other => panic!("v{version}: expected Corrupt, got {other:?}"),
        }
        let dir = std::env::temp_dir().join("cohana-corruption-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("footer-eof-v{version}.cohana"));
        std::fs::write(&path, &bytes).unwrap();
        match FileSource::open(&path).unwrap_err() {
            StorageError::Corrupt(msg) => {
                assert!(msg.contains("would start at offset"), "v{version}: weak message: {msg}")
            }
            other => panic!("v{version}: expected Corrupt, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn lazy_decode_of_tampered_chunk_errors_not_panics() {
    // Flip bytes inside the payload region only: the footer parses fine, so
    // FileSource::open succeeds, and the corruption must surface as a
    // per-segment decode error (or a changed-but-consistent payload), never
    // a panic — on both the whole-chunk (v2) and per-column (v3) paths.
    for version in [2, 3, 4] {
        let bytes = image(version);
        let dir = std::env::temp_dir().join("cohana-corruption-test");
        std::fs::create_dir_all(&dir).unwrap();
        for pos in [9usize, 40, 200, 1000] {
            let mut tampered = bytes.clone();
            if pos >= tampered.len() / 2 {
                continue;
            }
            tampered[pos] ^= 0x5A;
            let path = dir.join(format!("tamper-v{version}-{pos}.cohana"));
            std::fs::write(&path, &tampered).unwrap();
            if let Ok(src) = FileSource::open(&path) {
                let time_idx = src.table_meta().schema().time_idx();
                for i in 0..src.num_chunks() {
                    let _ = src.chunk(i);
                    let _ = src.chunk_columns(i, &[time_idx]);
                }
            }
            std::fs::remove_file(&path).ok();
        }
    }
}

#[test]
fn v4_interleaved_blob_truncation_and_tamper_never_panic() {
    // Sections with >= 64 entropy-coded symbols are written in the
    // interleaved rANS layout (sub-tag `0x80 | ways`, 64-bit lane states,
    // shared 32-bit renorm words), so a v4 image of this dataset carries
    // interleaved streams in its delta/ANS blobs — pin that premise via
    // inspect, then sweep truncations and payload byte-flips over the
    // whole image: every outcome must be an error or a consistent decode,
    // never a panic or an oversized allocation.
    let c = compressed();
    let bytes = cohana_storage::persist::to_bytes(&c).to_vec();
    let dir = std::env::temp_dir().join("cohana-corruption-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("interleaved-premise.cohana");
    std::fs::write(&path, &bytes).unwrap();
    let info = cohana_storage::persist::inspect(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let entropy_blobs = info.codecs[1].blobs + info.codecs[2].blobs;
    assert!(entropy_blobs > 0, "dataset must produce entropy-coded (interleaved) blobs");

    for denom in 1..=8usize {
        let cut = bytes.len() * denom / 9;
        assert!(from_bytes(&bytes[..cut]).is_err());
        exercise_lazy(&bytes[..cut], "ilv-cut");
    }
    // Flips spread across the payload half hit state prefixes, renorm
    // words, and the sub-tag byte itself on some position. (The random
    // proptest above covers the same ground statistically; this sweep is
    // the deterministic fixed-seed floor. Sparse on purpose — the suite
    // runs unoptimized under `cargo test`.)
    for pos in (9..bytes.len() / 2).step_by(997) {
        let mut tampered = bytes.clone();
        tampered[pos] ^= 0x81;
        if let Ok(table) = from_bytes(&tampered) {
            let _ = table.decompress();
        }
        exercise_lazy(&tampered, "ilv-flip");
    }
}

#[test]
fn v3_tampered_column_stats_detected_on_projected_fetch() {
    tampered_column_stats_detected(3);
}

#[test]
fn v4_tampered_column_stats_detected_on_projected_fetch() {
    tampered_column_stats_detected(4);
}

fn tampered_column_stats_detected(version: u32) {
    // Stats live at the end of each footer entry; flipping footer bytes
    // must surface as an open-time or fetch-time error, never a silent
    // wrong answer the executor would prune by. Either the footer parse
    // rejects the image or the decoded payload disagrees with the stats.
    let bytes = image(version);
    let tail = bytes.len() - 12;
    let footer_len = u64::from_le_bytes(bytes[tail..tail + 8].try_into().unwrap()) as usize;
    let footer_start = tail - footer_len;
    let dir = std::env::temp_dir().join("cohana-corruption-test");
    std::fs::create_dir_all(&dir).unwrap();
    let mut seen_reject = false;
    for frac in [2usize, 3, 4, 5] {
        let pos = footer_start + footer_len - footer_len / frac;
        let mut tampered = bytes.clone();
        tampered[pos] ^= 0x10;
        let path = dir.join(format!("stats-tamper-v{version}-{frac}.cohana"));
        std::fs::write(&path, &tampered).unwrap();
        match FileSource::open(&path) {
            Err(_) => seen_reject = true,
            Ok(src) => {
                // Exercise both the full fetch and a narrow projected fetch
                // of a non-time, non-action column, so per-column stats
                // verification runs on exactly the chunk_columns path.
                let schema = src.table_meta().schema();
                let other = (0..schema.arity())
                    .find(|&i| {
                        i != schema.user_idx() && i != schema.time_idx() && i != schema.action_idx()
                    })
                    .expect("schema has a plain column");
                for i in 0..src.num_chunks() {
                    if src.chunk(i).is_err() || src.chunk_columns(i, &[other]).is_err() {
                        seen_reject = true;
                    }
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
    assert!(seen_reject, "no tampering detected anywhere in the v{version} footer");
}
