//! Robustness: deserializing corrupted or truncated table images must fail
//! gracefully (an `Err`, never a panic, never an out-of-bounds read) — for
//! both the legacy v1 eager blobs and the v2 footer-indexed format, and for
//! both the eager (`from_bytes`) and lazy (`FileSource`) read paths.

use cohana_activity::{generate, GeneratorConfig};
use cohana_storage::persist::{from_bytes, to_bytes, to_bytes_v1};
use cohana_storage::{ChunkSource, CompressedTable, CompressionOptions, FileSource};
use proptest::prelude::*;

fn compressed() -> CompressedTable {
    let t = generate(&GeneratorConfig::small());
    CompressedTable::build(&t, CompressionOptions::with_chunk_size(256)).unwrap()
}

/// A serialized image in the requested format version.
fn image(version: u32) -> Vec<u8> {
    let c = compressed();
    match version {
        1 => to_bytes_v1(&c).to_vec(),
        2 => to_bytes(&c).to_vec(),
        v => panic!("no writer for version {v}"),
    }
}

/// Open `bytes` as a temp file with a lazy `FileSource` and touch every
/// chunk; any outcome but a panic is fine.
fn exercise_lazy(bytes: &[u8], tag: &str) {
    let dir = std::env::temp_dir().join("cohana-corruption-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("corrupt-{tag}-{:x}.cohana", bytes.len()));
    std::fs::write(&path, bytes).unwrap();
    if let Ok(src) = FileSource::open(&path) {
        for i in 0..src.num_chunks() {
            let _ = src.chunk(i);
        }
    }
    std::fs::remove_file(&path).ok();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_single_byte_flip_never_panics(
        version in prop::sample::select(vec![1u32, 2]),
        pos in 0usize..60_000,
        xor in 1u8..=255,
    ) {
        let mut bytes = image(version);
        let pos = pos % bytes.len();
        bytes[pos] ^= xor;
        // Either it still parses (the flip hit padding/payload that decodes
        // to different values) or it errors; both are fine. Any panic fails
        // the test.
        if let Ok(table) = from_bytes(&bytes) {
            // A successfully parsed table must stay internally
            // consistent enough to decompress or cleanly error.
            let _ = table.decompress();
        }
        if version == 2 {
            exercise_lazy(&bytes, "flip");
        }
    }

    #[test]
    fn random_truncation_never_panics(
        version in prop::sample::select(vec![1u32, 2]),
        cut_fraction in 0.0f64..1.0,
    ) {
        let bytes = image(version);
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assert!(from_bytes(&bytes[..cut]).is_err());
        if version == 2 {
            exercise_lazy(&bytes[..cut], "cut");
        }
    }

    #[test]
    fn random_garbage_never_panics(garbage in proptest::collection::vec(any::<u8>(), 0..2_000)) {
        let _ = from_bytes(&garbage);
        exercise_lazy(&garbage, "garbage");
    }
}

#[test]
fn valid_images_roundtrip_both_versions() {
    for version in [1, 2] {
        let bytes = image(version);
        let table = from_bytes(&bytes).unwrap();
        assert!(table.num_rows() > 0, "v{version}");
        assert_eq!(table.decompress().unwrap().num_rows(), table.num_rows(), "v{version}");
    }
}

#[test]
fn bad_magic_rejected_both_versions() {
    for version in [1, 2] {
        let mut bytes = image(version);
        bytes[0] ^= 0xFF;
        assert!(from_bytes(&bytes).is_err(), "v{version}");
    }
}

#[test]
fn lazy_decode_of_tampered_chunk_errors_not_panics() {
    // Flip bytes inside the chunk payload region only: the footer parses
    // fine, so FileSource::open succeeds, and the corruption must surface
    // as a per-chunk decode error (or a changed-but-consistent payload),
    // never a panic.
    let bytes = image(2);
    let dir = std::env::temp_dir().join("cohana-corruption-test");
    std::fs::create_dir_all(&dir).unwrap();
    for pos in [9usize, 40, 200, 1000] {
        let mut tampered = bytes.clone();
        if pos >= tampered.len() / 2 {
            continue;
        }
        tampered[pos] ^= 0x5A;
        let path = dir.join(format!("tamper-{pos}.cohana"));
        std::fs::write(&path, &tampered).unwrap();
        if let Ok(src) = FileSource::open(&path) {
            for i in 0..src.num_chunks() {
                let _ = src.chunk(i);
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
