//! A miniature Figure 11: run Q1 and Q3 on all five evaluation schemes,
//! check they agree, and print the timings.
//!
//! ```sh
//! cargo run --release --example baseline_comparison
//! ```

use cohana::engine::paper;
use cohana::prelude::*;
use cohana::relational::{ColEngine, RowEngine};
use std::time::Instant;

fn main() {
    let table = generate(&GeneratorConfig::new(500));
    println!("dataset: {} tuples, {} users\n", table.num_rows(), table.num_users());

    // Prepare all five schemes.
    let engine =
        Cohana::from_activity_table(&table, CompressionOptions::with_chunk_size(16 * 1024))
            .expect("compress");
    let mut col = ColEngine::load(&table);
    let mut row = RowEngine::load(&table);
    for action in ["launch", "shop"] {
        col.create_mv(action);
        row.create_mv(action);
    }

    println!(
        "{:<4} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "", "COHANA", "MONET-M", "MONET-S", "PG-M", "PG-S"
    );
    let session = engine.session();
    for (name, q) in [("Q1", paper::q1()), ("Q3", paper::q3())] {
        let time = |f: &mut dyn FnMut() -> CohortReport| {
            let _ = f(); // warm-up
            let start = Instant::now();
            let out = f();
            (out, start.elapsed())
        };
        // COHANA prepares once and re-executes the statement.
        let stmt = session.prepare(&q).expect("plans");
        let (a, t_cohana) = time(&mut || stmt.execute().unwrap());
        let (b, t_colm) = time(&mut || col.execute_mv(&q).unwrap());
        let (c, t_cols) = time(&mut || col.execute_sql(&q).unwrap());
        let (d, t_rowm) = time(&mut || row.execute_mv(&q).unwrap());
        let (e, t_rows) = time(&mut || row.execute_sql(&q).unwrap());

        // All five schemes must agree row for row.
        for (other, scheme) in [(&b, "MONET-M"), (&c, "MONET-S"), (&d, "PG-M"), (&e, "PG-S")] {
            assert_eq!(a.rows.len(), other.rows.len(), "{name}: {scheme} row count");
            for (x, y) in a.rows.iter().zip(other.rows.iter()) {
                assert_eq!(x.cohort, y.cohort);
                assert_eq!(x.age, y.age);
                assert!(
                    x.measures.iter().zip(y.measures.iter()).all(|(m, n)| m.approx_eq(n)),
                    "{name}: {scheme} measures differ"
                );
            }
        }

        println!(
            "{:<4} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?}",
            name, t_cohana, t_colm, t_cols, t_rowm, t_rows
        );
    }
    println!("\nall five schemes returned identical reports ✓");
}
