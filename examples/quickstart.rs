//! Quickstart: build an activity table, compress it, and run the paper's
//! Example 1 cohort analysis through the session/statement API — open a
//! [`Session`] on the engine, [`Session::prepare`] a [`Statement`] once,
//! inspect its plan with [`Statement::explain`], execute it, and read the
//! per-query [`QueryStats`] attached to the report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cohana::engine::AggFunc;
use cohana::engine::Expr;
use cohana::prelude::*;

fn main() {
    // 1. A synthetic mobile-game activity table (deterministic).
    let table = generate(&GeneratorConfig::new(300));
    println!("Activity table: {} tuples from {} users", table.num_rows(), table.num_users());
    println!("\nFirst rows (Table 1 of the paper):\n{}", table.preview(6));

    // 2. Compress into COHANA's chunked columnar format, open an engine,
    //    and start a session (a cheap per-caller handle with its own
    //    option overrides).
    let engine = Cohana::from_activity_table(&table, CompressionOptions::default())
        .expect("compression succeeds");
    let session = engine.session();

    // 3. Example 1: players born (first launch) in the dwarf role, cohorted
    //    by birth country; total gold spent on in-game shopping per age.
    let query = CohortQuery::builder("launch")
        .birth_where(Expr::attr("role").eq(Expr::lit_str("dwarf")))
        .age_where(Expr::attr("action").eq(Expr::lit_str("shop")))
        .cohort_by(["country"])
        .aggregate(AggFunc::sum("gold"))
        .build()
        .expect("valid query");

    // 4. Prepare once: the statement is validated, planned, and
    //    re-executable.
    let stmt = session.prepare(&query).expect("query plans");
    println!("Query:\n{}\n", query.to_sql());
    println!("Optimized plan (Figure 5):\n{}", stmt.explain());

    let report = stmt.execute().expect("query executes");
    println!("First rows of the report:");
    let mut preview = report.clone();
    preview.rows.truncate(12);
    println!("{}", preview.pretty());
    println!("({} (cohort, age) rows total)", report.num_rows());

    // 5. Every execution reports what it cost.
    println!("\nQuery stats: {}", report.stats.expect("executor attaches stats"));
}
