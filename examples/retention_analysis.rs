//! User-retention analysis (§4.5): the paper's Q1/Q2 — per-country launch
//! cohorts with `UserCount()` retained users per age — plus an age-bounded
//! variant (Q7).
//!
//! ```sh
//! cargo run --release --example retention_analysis
//! ```

use cohana::engine::{paper, AggFunc, Expr};
use cohana::prelude::*;

fn main() {
    let table = generate(&GeneratorConfig::new(500));
    let engine =
        Cohana::from_activity_table(&table, CompressionOptions::default()).expect("compress");
    let session = engine.session();

    // Q1: how many users of each country cohort come back at each age?
    let report = session.execute(&paper::q1()).expect("Q1 executes");
    println!("Q1 — country launch cohorts, retained users by age (day):");
    println!("{}", report.pivot(0));

    // Retention *rates* via the analysis helpers: measure / cohort size.
    println!("Day-1 / day-7 retention rates per cohort:");
    println!("{:<16} {:>6} {:>8} {:>8}", "cohort", "size", "day-1", "day-7");
    for series in cohana::engine::analysis::retention_matrix(&report, 0) {
        let rate = |age: i64| {
            series
                .points
                .iter()
                .find(|(a, _)| *a == age)
                .and_then(|(_, v)| *v)
                .map(|v| format!("{:.0}%", 100.0 * v))
                .unwrap_or_else(|| "-".into())
        };
        println!("{:<16} {:>6} {:>8} {:>8}", series.cohort[0], series.size, rate(1), rate(7));
    }

    // Q2: restrict to cohorts born in the first week.
    let q2 = paper::q2();
    let early = session.execute(&q2).expect("Q2 executes");
    println!("\nQ2 — cohorts born 2013-05-21..27 only: {} rows", early.num_rows());

    // Q7-style: only the first week of each user's life, by role this time.
    let q = CohortQuery::builder("launch")
        .age_where(Expr::age().lt(Expr::lit_int(7)))
        .cohort_by(["role"])
        .aggregate(AggFunc::user_count())
        .aggregate(AggFunc::count())
        .build()
        .expect("valid query");
    let by_role = session.execute(&q).expect("executes");
    println!("\nFirst-week activity by birth role (UserCount + tuple Count):");
    let mut preview = by_role.clone();
    preview.rows.truncate(10);
    println!("{}", preview.pretty());
}
