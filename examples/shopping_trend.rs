//! The paper's §1 motivation, end to end: why cohort analysis beats a plain
//! GROUP BY. Reproduces Table 2 (the misleading OLAP view) and Table 3 /
//! Figure 1 (the cohort matrix separating aging from social change).
//!
//! ```sh
//! cargo run --release --example shopping_trend
//! ```

use cohana::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let table = generate(&GeneratorConfig::new(500));
    let engine =
        Cohana::from_activity_table(&table, CompressionOptions::default()).expect("compress");

    // ---- Table 2: the plain SQL Qs — weekly Avg(gold) over shop actions.
    // Aging and social change are conflated into one hard-to-read series.
    let schema = table.schema();
    let (tidx, aidx) = (schema.time_idx(), schema.action_idx());
    let gidx = schema.index_of("gold").unwrap();
    let mut weeks: BTreeMap<i64, (i64, u64)> = BTreeMap::new();
    for row in table.rows() {
        if row.get(aidx).as_str() == Some("shop") {
            let w = TimeBin::Week.bin_start(Timestamp(row.get(tidx).as_int().unwrap())).secs();
            let e = weeks.entry(w).or_insert((0, 0));
            e.0 += row.get(gidx).as_int().unwrap();
            e.1 += 1;
        }
    }
    println!("Table 2 — plain GROUP BY weekly shopping trend (query Qs):");
    println!("{:<12}  {:>8}", "week", "avgSpent");
    for (w, (sum, n)) in &weeks {
        println!("{:<12}  {:>8.1}", Timestamp(*w).render_date(), *sum as f64 / *n as f64);
    }

    // ---- Table 3 / Figure 1: the cohort view of the same data.
    let query = cohana::engine::paper::shopping_trend();
    let report = engine.session().execute(&query).expect("execute");
    println!("\nTable 3 — weekly launch cohorts, Avg(gold) on shopping by age week:");
    println!("{}", report.pivot(0));

    println!("Read each row left-to-right for the AGING effect (spend declines with age).");
    println!("Read each column top-to-bottom for SOCIAL CHANGE (later cohorts spend more).");
}
