//! The extended SQL surface (§3.4) and mixed queries (§3.5) through the
//! session API: the exact query texts from the paper, prepared as
//! re-executable statements via [`SessionSqlExt::prepare_sql`], explained
//! with `EXPLAIN <query>` dispatch through [`SessionSqlExt::run_sql`], and
//! executed with per-query stats.
//!
//! ```sh
//! cargo run --release --example sql_interface
//! ```

use cohana::prelude::*;

fn main() {
    let table = generate(&GeneratorConfig::new(400));
    let engine =
        Cohana::from_activity_table(&table, CompressionOptions::default()).expect("compress");
    let session = engine.session();

    // The paper's Q1, verbatim — prepared once, executed twice (the second
    // run reuses the validated plan and compiled predicates).
    let q1 = "SELECT country, CohortSize, Age, UserCount() \
              FROM GameActions BIRTH FROM action = \"launch\" \
              COHORT BY country";
    println!("-- Q1:\n{q1}\n");
    let stmt = session.prepare_sql(q1).expect("Q1 prepares");
    println!("{}", stmt.explain());
    let r1 = stmt.execute().expect("Q1 runs");
    let r1_again = stmt.execute().expect("Q1 re-runs");
    assert_eq!(r1, r1_again);
    println!("{} (cohort, age) rows; stats: {}", r1.num_rows(), r1.stats.unwrap());
    println!("cumulative over {} executions: {}\n", stmt.executions(), stmt.cumulative_stats());

    // The paper's Q4: every operator at once, via EXPLAIN dispatch and then
    // the one-shot path.
    let q4 = "SELECT country, COHORTSIZE, AGE, Avg(gold) \
              FROM GameActions BIRTH FROM action = \"shop\" AND \
              time BETWEEN \"2013-05-21\" AND \"2013-05-27\" AND \
              role = \"dwarf\" AND \
              country IN [\"China\", \"Australia\", \"United States\"] \
              AGE ACTIVITIES IN action = \"shop\" AND country = Birth(country) \
              COHORT BY country";
    println!("-- Q4:\n{q4}\n");
    if let SqlAnswer::Plan(plan) = session.run_sql(&format!("EXPLAIN {q4}")).expect("explains") {
        println!("{plan}");
    }
    let r4 = session.query(q4).expect("Q4 runs");
    println!("{}", r4.pretty());

    // §3.5: a mixed query — SQL over a cohort sub-query — dispatched
    // through the same entry point the shell uses.
    let mixed = "WITH cohorts AS ( \
                   SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent \
                   FROM GameActions \
                   AGE ACTIVITIES IN action = \"shop\" \
                   BIRTH FROM action = \"launch\" \
                   COHORT BY country ) \
                 SELECT country, AGE, spent FROM cohorts \
                 WHERE country IN [\"Australia\", \"China\"] \
                 ORDER BY spent DESC LIMIT 8";
    println!("-- Mixed query (§3.5):\n{mixed}\n");
    match session.run_sql(mixed).expect("mixed query runs") {
        SqlAnswer::Mixed(rm) => println!("{}", rm.pretty()),
        other => panic!("expected a mixed result, got {other:?}"),
    }
}
