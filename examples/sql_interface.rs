//! The extended SQL surface (§3.4) and mixed queries (§3.5): the exact
//! query texts from the paper, parsed and executed.
//!
//! ```sh
//! cargo run --release --example sql_interface
//! ```

use cohana::prelude::*;
use cohana::sql::SqlExt;

fn main() {
    let table = generate(&GeneratorConfig::new(400));
    let engine =
        Cohana::from_activity_table(&table, CompressionOptions::default()).expect("compress");

    // The paper's Q1, verbatim.
    let q1 = "SELECT country, CohortSize, Age, UserCount() \
              FROM GameActions BIRTH FROM action = \"launch\" \
              COHORT BY country";
    println!("-- Q1:\n{q1}\n");
    println!("{}", engine.explain_sql(q1).unwrap());
    let r1 = engine.query(q1).expect("Q1 runs");
    println!("{} (cohort, age) rows\n", r1.num_rows());

    // The paper's Q4: every operator at once.
    let q4 = "SELECT country, COHORTSIZE, AGE, Avg(gold) \
              FROM GameActions BIRTH FROM action = \"shop\" AND \
              time BETWEEN \"2013-05-21\" AND \"2013-05-27\" AND \
              role = \"dwarf\" AND \
              country IN [\"China\", \"Australia\", \"United States\"] \
              AGE ACTIVITIES IN action = \"shop\" AND country = Birth(country) \
              COHORT BY country";
    println!("-- Q4:\n{q4}\n");
    let r4 = engine.query(q4).expect("Q4 runs");
    println!("{}", r4.pretty());

    // §3.5: a mixed query — SQL over a cohort sub-query.
    let mixed = "WITH cohorts AS ( \
                   SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent \
                   FROM GameActions \
                   AGE ACTIVITIES IN action = \"shop\" \
                   BIRTH FROM action = \"launch\" \
                   COHORT BY country ) \
                 SELECT country, AGE, spent FROM cohorts \
                 WHERE country IN [\"Australia\", \"China\"] \
                 ORDER BY spent DESC LIMIT 8";
    println!("-- Mixed query (§3.5):\n{mixed}\n");
    let rm = engine.query_mixed(mixed).expect("mixed query runs");
    println!("{}", rm.pretty());
}
