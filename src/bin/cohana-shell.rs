//! `cohana-shell` — an interactive cohort-SQL shell over a synthetic or
//! user-provided activity dataset.
//!
//! ```text
//! cohana-shell [--users N] [--load FILE.cohana] [--open FILE.cohana]
//!              [--cache-bytes N[k|m|g]] [--csv FILE.csv]
//!
//! cohana> SELECT country, COHORTSIZE, AGE, UserCount()
//!     ... FROM GameActions BIRTH FROM action = "launch"
//!     ... COHORT BY country;
//! cohana> EXPLAIN SELECT ... ;        -- show the optimized plan
//! cohana> .stats                      -- per-query stats of the last query
//! cohana> .stats source               -- lifetime source/cache counters
//! cohana> .pivot SELECT ... ;         -- render as a cohort matrix
//! cohana> .connect HOST:PORT          -- route queries to a cohana-serve
//! cohana> .schema | .save FILE | .help | .quit
//! ```
//!
//! Statements end with `;`. `WITH … AS (…) SELECT …` mixed queries (§3.5)
//! and `EXPLAIN <query>` are supported. Every statement runs through one
//! [`Session`] on the shared engine — or, after `.connect HOST:PORT
//! [tenant]`, over the wire through a remote `cohana-serve` (`.disconnect`
//! returns to the local engine; `.stats server` shows the remote tenant and
//! admission counters).

use cohana::engine::QueryStats;
use cohana::prelude::*;
use cohana::server::{Client, ClientError};
use cohana::sql::{SessionSqlExt, SqlAnswer};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut users = 1_000usize;
    let mut load: Option<String> = None;
    let mut open: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut cache_bytes = cohana::storage::DEFAULT_CACHE_BUDGET;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--users" => {
                i += 1;
                users = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("bad --users value");
                    std::process::exit(2);
                });
            }
            "--load" => {
                i += 1;
                load = args.get(i).cloned();
            }
            "--open" => {
                i += 1;
                open = args.get(i).cloned();
            }
            "--cache-bytes" => {
                i += 1;
                cache_bytes = args.get(i).and_then(|v| parse_bytes(v)).unwrap_or_else(|| {
                    eprintln!("bad --cache-bytes value (expected e.g. 1048576, 64m, 2g)");
                    std::process::exit(2);
                });
            }
            "--csv" => {
                i += 1;
                csv = args.get(i).cloned();
            }
            "--help" | "-h" => {
                println!(
                    "usage: cohana-shell [--users N] [--load FILE.cohana] \
                     [--open FILE.cohana] [--cache-bytes N[k|m|g]] [--csv FILE.csv]\n\
                     --load reads the whole file into memory; --open reads only the\n\
                     footer and fetches chunk columns on demand as queries touch them\n\
                     (v2/v3 files), keeping at most --cache-bytes of decoded segments\n\
                     resident."
                );
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let engine = Cohana::new(Default::default());
    if let Some(path) = open {
        // Works for single files and sharded table directories alike; an
        // interactive shell is long-lived, so let background maintenance
        // keep sharded tables compacted.
        let opened = engine
            .open(&path)
            .cache_bytes(cache_bytes)
            .maintenance(cohana::engine::MaintenanceConfig::enabled())
            .open()
            .and_then(|handle| Ok((handle.num_shards(), handle.source()?)));
        match opened {
            Ok((shards, src)) => eprintln!(
                "opened {path} lazily: {} tuples in {} chunks across {shards} shard(s) \
                 (0 decoded, cache budget {} bytes)",
                src.table_meta().num_rows(),
                src.num_chunks(),
                cache_bytes,
            ),
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }
        }
    } else if let Some(path) = load {
        let loaded = engine
            .open(&path)
            .resident(true)
            .open()
            .and_then(|handle| Ok(handle.source()?.table_meta().num_rows()));
        match loaded {
            Ok(rows) => eprintln!("loaded {rows} tuples from {path}"),
            Err(e) => {
                eprintln!("cannot load {path}: {e}");
                std::process::exit(1);
            }
        }
    } else if let Some(path) = csv {
        let file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }
        };
        let table = match cohana::activity::csv::read_csv(Schema::game_actions(), file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot parse {path}: {e}");
                std::process::exit(1);
            }
        };
        let compressed = CompressedTable::build(&table, CompressionOptions::default())
            .expect("compression succeeds");
        eprintln!("loaded {} tuples ({} users) from {path}", table.num_rows(), table.num_users());
        engine.register("GameActions", compressed);
    } else {
        eprintln!("generating a synthetic dataset with {users} users…");
        let table = generate(&GeneratorConfig::new(users));
        let compressed = CompressedTable::build(&table, CompressionOptions::default())
            .expect("compression succeeds");
        eprintln!("ready: {} tuples, {} users", table.num_rows(), table.num_users());
        engine.register("GameActions", compressed);
    }
    eprintln!("type .help for commands; statements end with `;`\n");

    let session = engine.session();
    let mut remote: Option<Client> = None;
    let mut last_stats: Option<QueryStats> = None;
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    let interactive = atty_stdin();
    loop {
        if interactive {
            if buffer.is_empty() {
                print!("cohana> ");
            } else {
                print!("    ... ");
            }
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !meta_command(&session, trimmed, &mut remote, &mut last_stats) {
                break;
            }
            continue;
        }
        buffer.push_str(&line);
        if !buffer.trim_end().ends_with(';') {
            continue;
        }
        let stmt = buffer.trim().trim_end_matches(';').trim().to_string();
        buffer.clear();
        if stmt.is_empty() {
            continue;
        }
        if remote.is_some() {
            run_remote_statement(&mut remote, &stmt, &mut last_stats);
        } else {
            run_statement(&session, &stmt, Render::Table, &mut last_stats);
        }
    }
}

/// Run one SQL statement over the wire through the connected server.
/// `EXPLAIN <query>` prints the server's plan without executing. A
/// connection-level failure drops the remote session back to local mode.
fn run_remote_statement(
    remote: &mut Option<Client>,
    stmt: &str,
    last_stats: &mut Option<QueryStats>,
) {
    let client = remote.as_mut().expect("caller checked remote mode");
    let started = std::time::Instant::now();
    let trimmed = stmt.trim();
    let explain_body = trimmed
        .get(..8)
        .filter(|head| head.eq_ignore_ascii_case("EXPLAIN "))
        .map(|_| trimmed[8..].trim());
    let outcome = match explain_body {
        Some(body) => client.prepare(body).map(|prepared| {
            println!("{}", prepared.explain());
            *last_stats = None;
        }),
        None => client.query(trimmed).map(|report| {
            println!("{}", report.pretty());
            println!("({} rows in {:.1?})", report.num_rows(), started.elapsed());
            *last_stats = report.stats;
        }),
    };
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        *last_stats = None;
        if matches!(e, ClientError::Io(_) | ClientError::Desynced) {
            eprintln!("connection lost; back to the local engine");
            *remote = None;
        }
    }
}

/// Best-effort interactivity detection without extra dependencies: honour
/// an explicit override, default to showing prompts.
fn atty_stdin() -> bool {
    std::env::var("COHANA_SHELL_NO_PROMPT").is_err()
}

/// Parse a byte count with an optional k/m/g suffix (powers of 1024).
fn parse_bytes(s: &str) -> Option<usize> {
    let lower = s.trim().to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm', 'g']) {
        Some(d) => match lower.as_bytes()[lower.len() - 1] {
            b'k' => (d, 1usize << 10),
            b'm' => (d, 1 << 20),
            _ => (d, 1 << 30),
        },
        None => (lower.as_str(), 1),
    };
    digits.parse::<usize>().ok().and_then(|n| n.checked_mul(mult))
}

enum Render {
    Table,
    Pivot,
}

/// Run one SQL statement through the session, remembering its per-query
/// stats for `.stats`.
fn run_statement(
    session: &Session<'_>,
    stmt: &str,
    render: Render,
    last_stats: &mut Option<QueryStats>,
) {
    let started = std::time::Instant::now();
    match session.run_sql(stmt) {
        Ok(SqlAnswer::Plan(text)) => {
            println!("{text}");
            // EXPLAIN executes nothing: leaving stats from an earlier
            // query would misattribute them to this statement.
            *last_stats = None;
        }
        Ok(SqlAnswer::Mixed(res)) => {
            println!("{}", res.pretty());
            println!("({} rows in {:.1?})", res.num_rows(), started.elapsed());
            *last_stats = res.stats;
        }
        Ok(SqlAnswer::Report(report)) => {
            match render {
                Render::Table => println!("{}", report.pretty()),
                Render::Pivot => println!("{}", report.pivot(0)),
            }
            println!("({} rows in {:.1?})", report.num_rows(), started.elapsed());
            *last_stats = report.stats;
        }
        Err(e) => {
            eprintln!("error: {e}");
            // Don't let `.stats` report an earlier query as the last one.
            *last_stats = None;
        }
    }
}

/// Handle a `.command`; returns false to quit.
fn meta_command(
    session: &Session<'_>,
    cmd: &str,
    remote: &mut Option<Client>,
    last_stats: &mut Option<QueryStats>,
) -> bool {
    let engine = session.engine();
    let (name, rest) = match cmd.split_once(' ') {
        Some((n, r)) => (n, r.trim()),
        None => (cmd, ""),
    };
    match name {
        ".quit" | ".exit" => return false,
        ".help" => {
            println!(
                ".schema            show the activity table schema\n\
                 .stats             per-query stats of the last query\n\
                 .stats source      lifetime storage/cache counters\n\
                 .explain <query>   show the optimized plan (or: EXPLAIN <query>;)\n\
                 .pivot <query>;    run and render as a cohort matrix\n\
                 .ingest <file.csv> append new activity records to the table\n\
                 .compact           merge appended chunks, restore sort order\n\
                 .delete <user>...  erase users (sharded tables; crash-safe)\n\
                 .stats shards      per-shard space + maintenance counters\n\
                 .save <file>       persist the compressed table\n\
                 .connect H:P [t]   route queries to a cohana-serve (tenant t)\n\
                 .disconnect        return to the local engine\n\
                 .stats server      remote tenant + admission counters\n\
                 .quit              exit"
            );
        }
        ".schema" => {
            if let Some(schema) = engine.schema_of("GameActions") {
                for a in schema.attributes() {
                    println!("{:<10} {:<8} {:?}", a.name, a.vtype.name(), a.role);
                }
            }
        }
        ".connect" => {
            let mut parts = rest.split_whitespace();
            let (addr, tenant) = (parts.next(), parts.next().unwrap_or("shell"));
            match addr {
                None => eprintln!("usage: .connect HOST:PORT [tenant]"),
                Some(addr) => match Client::connect(addr, tenant) {
                    Ok(client) => {
                        println!(
                            "connected to {} ({}, default table {}) as tenant {tenant:?}",
                            addr,
                            client.banner(),
                            client.default_table()
                        );
                        *remote = Some(client);
                    }
                    Err(e) => eprintln!("cannot connect to {addr}: {e}"),
                },
            }
        }
        ".disconnect" => {
            if remote.take().is_some() {
                println!("disconnected; back to the local engine");
            } else {
                eprintln!("not connected");
            }
        }
        ".stats" if rest == "server" => match remote.as_mut() {
            None => eprintln!("not connected; .connect HOST:PORT first"),
            Some(client) => match client.server_stats() {
                Ok(s) => {
                    println!(
                        "tenant: {} queries, cumulative {}\n\
                         admission: {}/{} active (peak {}), {} queued (max {}), \
                         {} admitted, {} refused, total queue wait {:.1?}",
                        s.queries,
                        s.stats,
                        s.admission.active,
                        s.admission.cap,
                        s.admission.peak_active,
                        s.admission.queued,
                        s.admission.max_queue_depth,
                        s.admission.admitted_total,
                        s.admission.rejected_total,
                        s.admission.total_queue_wait,
                    );
                }
                Err(e) => eprintln!("error: {e}"),
            },
        },
        ".stats" if rest == "source" => source_stats(engine),
        ".stats" if rest == "shards" => shard_stats(engine),
        ".stats" => match last_stats {
            Some(stats) => println!("last query: {stats}"),
            None => println!(
                "no stats for the last statement (none run yet, or it failed); \
                 `.stats source` shows lifetime counters"
            ),
        },
        ".explain" => match session.explain_sql(rest.trim_end_matches(';')) {
            Ok(text) => println!("{text}"),
            Err(e) => eprintln!("error: {e}"),
        },
        ".pivot" => run_statement(session, rest.trim_end_matches(';'), Render::Pivot, last_stats),
        ".ingest" => {
            if rest.is_empty() {
                eprintln!("usage: .ingest FILE.csv");
            } else {
                ingest_csv(engine, rest);
            }
        }
        ".compact" => match engine.table("GameActions").and_then(|t| t.compact()) {
            Ok(s) => println!(
                "compacted: {} -> {} chunks over {} rows, reclaimed {} of {} bytes",
                s.chunks_before, s.chunks_after, s.rows, s.reclaimed_bytes, s.bytes_before
            ),
            Err(e) => eprintln!("error: {e}"),
        },
        ".delete" => {
            if rest.is_empty() {
                eprintln!("usage: .delete USER [USER...]");
            } else {
                let users: Vec<&str> = rest.split_whitespace().collect();
                match engine.table("GameActions").and_then(|t| t.delete_users(&users)) {
                    Ok(s) => println!(
                        "deleted {} users ({} rows) by rewriting {} shard(s); \
                         queries prepared from now on no longer see them",
                        s.users_deleted, s.rows_deleted, s.shards_rewritten
                    ),
                    Err(e) => eprintln!("error: {e}"),
                }
            }
        }
        ".save" => {
            if rest.is_empty() {
                eprintln!("usage: .save FILE");
            } else if let Some(t) = engine.resident("GameActions") {
                match cohana::storage::persist::write_file(&t, std::path::Path::new(rest)) {
                    Ok(()) => println!("saved to {rest}"),
                    Err(e) => eprintln!("error: {e}"),
                }
            } else {
                eprintln!("table is file-backed already; copy the source file instead");
            }
        }
        other => eprintln!("unknown command {other:?}; try .help"),
    }
    true
}

/// `.ingest FILE.csv`: parse new activity records against the table's
/// schema and append them (in place for file-backed tables, rebuilding for
/// resident ones). Queries prepared afterwards see the new data.
fn ingest_csv(engine: &Cohana, path: &str) {
    let Some(schema) = engine.schema_of("GameActions") else {
        eprintln!("no GameActions table registered");
        return;
    };
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return;
        }
    };
    let batch = match cohana::activity::csv::read_csv(schema, file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return;
        }
    };
    match engine.table("GameActions").and_then(|t| t.ingest(&batch)) {
        Ok(s) => {
            println!(
                "ingested {} rows: {} -> {} chunks ({} rewritten for returning users)",
                s.rows_appended, s.chunks_before, s.chunks_after, s.chunks_rewritten
            );
            if s.dead_bytes > 0 {
                println!("{} dead bytes in the file; run .compact to reclaim them", s.dead_bytes);
            }
        }
        Err(e) => eprintln!("error: {e}"),
    }
}

/// Per-shard space accounting plus maintenance counters (`.stats shards`).
fn shard_stats(engine: &Cohana) {
    let handle = match engine.table("GameActions") {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: {e}");
            return;
        }
    };
    match handle.space_stats() {
        Ok(space) => {
            for (i, s) in space.iter().enumerate() {
                println!(
                    "shard {i:>4}: {:>10} bytes, {:>8} dead ({:>5.1}%), {} rows in {} chunks",
                    s.file_bytes,
                    s.dead_bytes,
                    s.dead_ratio() * 100.0,
                    s.rows,
                    s.chunks,
                );
            }
        }
        Err(e) => eprintln!("error: {e}"),
    }
    if let Ok(m) = handle.maintenance_stats() {
        println!(
            "maintenance: {} passes, {} auto-compactions reclaiming {} bytes, \
             {} tombstoned users applied, last max dead ratio {:.1}%",
            m.passes,
            m.auto_compactions,
            m.reclaimed_bytes,
            m.tombstone_users_applied,
            m.last_max_dead_ratio * 100.0,
        );
    }
}

/// Lifetime counters of the backing table or source (`.stats source`).
fn source_stats(engine: &Cohana) {
    if let Some(t) = engine.resident("GameActions") {
        let s = cohana::storage::StorageStats::of(&t);
        println!(
            "{} tuples, {} users, {} chunks, {:.2} MB compressed ({:.2} bytes/tuple)",
            s.num_rows,
            s.num_users,
            s.num_chunks,
            s.total_bytes() as f64 / (1024.0 * 1024.0),
            s.bytes_per_tuple()
        );
    } else if let Some(src) = engine.source("GameActions") {
        let meta = src.table_meta();
        let io = src.io_stats();
        println!(
            "{} tuples, {} users, {} chunks (file-backed)\n\
             io: {} chunks / {} columns decoded, {} bytes read from disk, {} bytes decoded\n\
             cache: {} of {} bytes resident (decoded), {} evictions",
            meta.num_rows(),
            meta.num_users(),
            src.num_chunks(),
            io.chunks_decoded,
            io.columns_decoded,
            io.bytes_read,
            io.bytes_decompressed,
            io.cache_resident_bytes,
            io.cache_budget_bytes,
            io.cache_evictions,
        );
        let decode: Vec<String> = ["raw", "delta", "ans"]
            .iter()
            .zip(io.decode)
            .filter(|(_, d)| d.bytes_out > 0)
            .map(|(name, d)| format!("{name} {:.0} MB/s", d.mbps()))
            .collect();
        if !decode.is_empty() {
            println!("decode: {}", decode.join(", "));
        }
    }
}
