//! # cohana
//!
//! Facade crate for the COHANA cohort query processing system, a from-scratch
//! Rust reproduction of *"Cohort Query Processing"* (Jiang, Cai, Chen,
//! Jagadish, Ooi, Tan, Tung — VLDB 2016).
//!
//! Cohort analysis groups users into *cohorts* by the circumstances of their
//! *birth* (the first time they performed a chosen birth action) and tracks
//! how each cohort's behaviour evolves with *age*, teasing apart the effect
//! of aging from the effect of social change.
//!
//! This crate re-exports the individual subsystem crates:
//!
//! * [`activity`] — the activity-table data model and workload generator,
//! * [`storage`] — COHANA's compressed, user-clustered columnar storage,
//! * [`engine`] — the cohort algebra, planner, and physical operators,
//! * [`sql`] — the extended SQL front end (`BIRTH FROM`, `AGE ACTIVITIES
//!   IN`, `COHORT BY`),
//! * [`relational`] — the row/columnar relational baselines (the paper's
//!   Postgres / MonetDB stand-ins) with SQL- and materialized-view-based
//!   cohort evaluation,
//! * [`server`] — the concurrent TCP serving layer (`cohana-serve`) and its
//!   blocking client, with admission control and streaming results.
//!
//! ## Quickstart
//!
//! ```
//! use cohana::prelude::*;
//!
//! // Generate a small synthetic mobile-game dataset and compress it.
//! let table = generate(&GeneratorConfig::small());
//! let engine = Cohana::from_activity_table(&table, CompressionOptions::default()).unwrap();
//!
//! // Open a session, prepare Q1 of the paper (country launch cohorts,
//! // user retention by age), execute, and observe what it cost.
//! let session = engine.session();
//! let stmt = session
//!     .prepare_sql(
//!         "SELECT country, COHORTSIZE, AGE, UserCount() \
//!          FROM GameActions BIRTH FROM action = \"launch\" \
//!          COHORT BY country",
//!     )
//!     .unwrap();
//! let report = stmt.execute().unwrap();
//! assert!(report.num_rows() > 0);
//! assert!(report.stats.unwrap().chunks_scanned > 0);
//! ```

pub use cohana_activity as activity;
pub use cohana_core as engine;
pub use cohana_relational as relational;
pub use cohana_server as server;
pub use cohana_sql as sql;
pub use cohana_storage as storage;

/// Commonly used items in one import.
pub mod prelude {
    pub use cohana_activity::{
        generate, scale_table, ActivityTable, ArrivalModel, GeneratorConfig, Schema, TimeBin,
        Timestamp, Value,
    };
    pub use cohana_core::{
        AggFunc, Cohana, CohortQuery, CohortReport, EngineOptions, MaintenanceConfig, OpenOptions,
        PlannerOptions, QueryStats, QueryStream, ResultBatch, Session, Statement, TableHandle,
    };
    pub use cohana_sql::{parse_cohort_query, SessionSqlExt, SqlAnswer, SqlExt};
    pub use cohana_storage::{
        ChunkSource, CompressedTable, CompressionOptions, FileSource, SourceIoStats,
    };
}
