//! End-to-end integration tests spanning every crate: generate → CSV →
//! compress → persist → reload → SQL → execute → compare against the
//! reference evaluator and the relational baselines.

use cohana::engine::naive::naive_execute;
use cohana::engine::{paper, EngineOptions};
use cohana::prelude::*;
use cohana::relational::{ColEngine, RowEngine};
use cohana::sql::SqlExt;
use cohana::storage::persist;

#[test]
fn full_pipeline_csv_persist_sql() {
    let table = generate(&GeneratorConfig::new(120));

    // CSV round trip (the ingest path for the paper's 3.6 GB csv dataset).
    let mut csv = Vec::new();
    cohana::activity::csv::write_csv(&table, &mut csv).unwrap();
    let reloaded = cohana::activity::csv::read_csv(table.schema().clone(), &csv[..]).unwrap();
    assert_eq!(reloaded.rows(), table.rows());

    // Compress, persist to disk, read back.
    let compressed =
        CompressedTable::build(&reloaded, CompressionOptions::with_chunk_size(2048)).unwrap();
    let dir = std::env::temp_dir().join("cohana-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("game.cohana");
    persist::write_file(&compressed, &path).unwrap();

    let engine = Cohana::new(EngineOptions::default());
    engine.open(&path).resident(true).open().unwrap();
    std::fs::remove_file(&path).ok();

    // Query through the SQL front end; verify against the reference.
    let report = engine
        .query(
            "SELECT country, CohortSize, Age, UserCount() \
             FROM GameActions BIRTH FROM action = \"launch\" COHORT BY country",
        )
        .unwrap();
    let want = naive_execute(&table, &paper::q1()).unwrap();
    assert_eq!(report.rows, want.rows);
}

#[test]
fn all_five_schemes_agree_on_all_benchmark_queries() {
    let table = generate(&GeneratorConfig::new(100));
    let engine =
        Cohana::from_activity_table(&table, CompressionOptions::with_chunk_size(1024)).unwrap();
    let mut col = ColEngine::load(&table);
    let mut row = RowEngine::load(&table);
    for action in ["launch", "shop"] {
        col.create_mv(action);
        row.create_mv(action);
    }
    for q in [paper::q1(), paper::q2(), paper::q3(), paper::q4(), paper::q7(7), paper::q8(5)] {
        let reference = naive_execute(&table, &q).unwrap();
        let results = [
            ("cohana", engine.execute(&q).unwrap()),
            ("col-mv", col.execute_mv(&q).unwrap()),
            ("col-sql", col.execute_sql(&q).unwrap()),
            ("row-mv", row.execute_mv(&q).unwrap()),
            ("row-sql", row.execute_sql(&q).unwrap()),
        ];
        for (scheme, got) in &results {
            assert_eq!(got.rows.len(), reference.rows.len(), "{scheme} on {q}");
            for (a, b) in got.rows.iter().zip(reference.rows.iter()) {
                assert_eq!(a.cohort, b.cohort, "{scheme}");
                assert_eq!(a.age, b.age, "{scheme}");
                assert_eq!(a.size, b.size, "{scheme}");
                for (x, y) in a.measures.iter().zip(b.measures.iter()) {
                    assert!(x.approx_eq(y), "{scheme}: {x:?} vs {y:?}");
                }
            }
        }
    }
}

#[test]
fn scaling_preserves_per_cohort_structure() {
    // Scale-2 data = two copies of the user population, so cohort sizes and
    // counts double while averages stay identical.
    let base = generate(&GeneratorConfig::new(80));
    let scaled = scale_table(&base, 2);
    let e1 = Cohana::from_activity_table(&base, CompressionOptions::default()).unwrap();
    let e2 = Cohana::from_activity_table(&scaled, CompressionOptions::default()).unwrap();

    let r1 = e1.execute(&paper::q1()).unwrap();
    let r2 = e2.execute(&paper::q1()).unwrap();
    assert_eq!(r1.rows.len(), r2.rows.len());
    for (a, b) in r1.rows.iter().zip(r2.rows.iter()) {
        assert_eq!(a.cohort, b.cohort);
        assert_eq!(a.size * 2, b.size);
        assert_eq!(a.measures[0].as_i64().unwrap() * 2, b.measures[0].as_i64().unwrap());
    }

    let a1 = e1.execute(&paper::q3()).unwrap();
    let a2 = e2.execute(&paper::q3()).unwrap();
    for (a, b) in a1.rows.iter().zip(a2.rows.iter()) {
        assert!(a.measures[0].approx_eq(&b.measures[0]), "averages invariant under scaling");
    }
}

#[test]
fn mixed_query_consumes_cohort_result() {
    let table = generate(&GeneratorConfig::new(120));
    let engine = Cohana::from_activity_table(&table, CompressionOptions::default()).unwrap();
    let res = engine
        .query_mixed(
            "WITH cohorts AS ( \
               SELECT country, COHORTSIZE, AGE, Sum(gold) AS spent \
               FROM GameActions \
               AGE ACTIVITIES IN action = \"shop\" \
               BIRTH FROM action = \"launch\" \
               COHORT BY country ) \
             SELECT country, AGE, spent FROM cohorts \
             WHERE AGE <= 3 ORDER BY spent DESC LIMIT 4",
        )
        .unwrap();
    assert!(res.num_rows() <= 4);
    for row in &res.rows {
        assert!(row[1].parse::<i64>().unwrap() <= 3);
    }
}

#[test]
fn explain_shows_pushed_down_plan() {
    let table = generate(&GeneratorConfig::new(60));
    let engine = Cohana::from_activity_table(&table, CompressionOptions::default()).unwrap();
    let text = engine.explain(&paper::q4()).unwrap();
    let b = text.find("σb").expect("birth selection in plan");
    let g = text.find("σg").expect("age selection in plan");
    assert!(g < b, "birth selection must be pushed below age selection:\n{text}");
}

#[test]
fn storage_compresses_well_below_csv() {
    let table = generate(&GeneratorConfig::new(200));
    let mut csv = Vec::new();
    cohana::activity::csv::write_csv(&table, &mut csv).unwrap();
    let compressed = CompressedTable::build(&table, CompressionOptions::default()).unwrap();
    let stats = cohana::storage::StorageStats::of(&compressed);
    // The paper compresses a 3.6 GB CSV into a fraction of its size; demand
    // at least 4x here.
    assert!(
        stats.total_bytes() * 4 < csv.len(),
        "compressed {} vs csv {}",
        stats.total_bytes(),
        csv.len()
    );
}
