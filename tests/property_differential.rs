//! Property-based differential testing: random activity tables and random
//! cohort queries must produce identical results from the optimized COHANA
//! executor, the naive reference evaluator, and both relational baselines.

use cohana::engine::naive::naive_execute;
use cohana::engine::{plan_query, AggFunc, CohortQuery, Expr, PlannerOptions, Statement};
use cohana::prelude::*;
use cohana::relational::{ColEngine, RowEngine};
use cohana_activity::{Schema, TableBuilder};
use proptest::prelude::*;
use std::sync::Arc;

const ACTIONS: [&str; 4] = ["launch", "shop", "fight", "quest"];
const COUNTRIES: [&str; 3] = ["China", "Australia", "Japan"];
const ROLES: [&str; 3] = ["dwarf", "wizard", "bandit"];

/// A randomly generated activity tuple (pre-sort).
#[derive(Debug, Clone)]
struct RawTuple {
    user: u8,
    time: i64,
    action: usize,
    country: usize,
    role: usize,
    gold: i64,
}

fn raw_tuple() -> impl Strategy<Value = RawTuple> {
    (
        0u8..12,
        0i64..(40 * 86_400),
        0usize..ACTIONS.len(),
        0usize..COUNTRIES.len(),
        0usize..ROLES.len(),
        0i64..200,
    )
        .prop_map(|(user, time, action, country, role, gold)| RawTuple {
            user,
            time,
            action,
            country,
            role,
            gold,
        })
}

fn build_table(tuples: Vec<RawTuple>) -> ActivityTable {
    let mut b = TableBuilder::new(Schema::game_actions());
    let mut seen = std::collections::HashSet::new();
    for t in tuples {
        // Enforce the (user, time, action) primary key by dropping dups.
        if !seen.insert((t.user, t.time, t.action)) {
            continue;
        }
        b.push(vec![
            Value::from(format!("u{:02}", t.user)),
            Value::int(t.time),
            Value::str(ACTIONS[t.action]),
            Value::str(COUNTRIES[t.country]),
            Value::str("city"),
            Value::str(ROLES[t.role]),
            Value::int(1),
            Value::int(t.gold),
        ])
        .unwrap();
    }
    b.finish().unwrap()
}

/// A random query over the generated schema.
fn query_strategy() -> impl Strategy<Value = CohortQuery> {
    let birth_action = prop::sample::select(ACTIONS.to_vec());
    let birth_pred = prop_oneof![
        Just(None),
        prop::sample::select(ROLES.to_vec())
            .prop_map(|r| Some(Expr::attr("role").eq(Expr::lit_str(r)))),
        (0i64..30)
            .prop_map(|d| Some(Expr::attr("time").between_int(d * 86_400, (d + 10) * 86_400))),
    ];
    let age_pred = prop_oneof![
        Just(None),
        prop::sample::select(ACTIONS.to_vec())
            .prop_map(|a| Some(Expr::attr("action").eq(Expr::lit_str(a)))),
        (1i64..15).prop_map(|g| Some(Expr::age().lt(Expr::lit_int(g)))),
        Just(Some(Expr::attr("country").eq(Expr::birth("country")))),
    ];
    let cohort_attr = prop::sample::select(vec!["country", "role"]);
    let agg = prop::sample::select(vec![0usize, 1, 2, 3]);
    (birth_action, birth_pred, age_pred, cohort_attr, agg).prop_map(
        |(action, bp, ap, cohort, agg)| {
            let mut b = CohortQuery::builder(action).cohort_by([cohort]);
            if let Some(p) = bp {
                b = b.birth_where(p);
            }
            if let Some(p) = ap {
                b = b.age_where(p);
            }
            let agg = match agg {
                0 => AggFunc::sum("gold"),
                1 => AggFunc::avg("gold"),
                2 => AggFunc::count(),
                _ => AggFunc::user_count(),
            };
            b.aggregate(agg).build().expect("generated queries are valid")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn cohana_matches_reference_on_random_data(
        tuples in proptest::collection::vec(raw_tuple(), 0..150),
        query in query_strategy(),
        chunk_size in prop::sample::select(vec![8usize, 64, 4096]),
    ) {
        let table = build_table(tuples);
        let reference = naive_execute(&table, &query).unwrap();
        let compressed = CompressedTable::build(
            &table,
            CompressionOptions::with_chunk_size(chunk_size),
        ).unwrap();
        let plan = plan_query(&query, table.schema(), PlannerOptions::default()).unwrap();
        let got = Statement::with_plan(Arc::new(compressed), plan, 1).unwrap().execute().unwrap();

        prop_assert_eq!(got.rows.len(), reference.rows.len(), "query {}", query);
        for (a, b) in got.rows.iter().zip(reference.rows.iter()) {
            prop_assert_eq!(&a.cohort, &b.cohort);
            prop_assert_eq!(a.age, b.age);
            prop_assert_eq!(a.size, b.size);
            for (x, y) in a.measures.iter().zip(b.measures.iter()) {
                prop_assert!(x.approx_eq(y), "{:?} vs {:?} on {}", x, y, query);
            }
        }
        prop_assert_eq!(&got.cohort_sizes, &reference.cohort_sizes);
    }

    #[test]
    fn baselines_match_reference_on_random_data(
        tuples in proptest::collection::vec(raw_tuple(), 0..120),
        query in query_strategy(),
    ) {
        let table = build_table(tuples);
        let reference = naive_execute(&table, &query).unwrap();

        let mut row = RowEngine::load(&table);
        let row_sql = row.execute_sql(&query).unwrap();
        row.create_mv(&query.birth_action);
        let row_mv = row.execute_mv(&query).unwrap();

        let mut col = ColEngine::load(&table);
        let col_sql = col.execute_sql(&query).unwrap();
        col.create_mv(&query.birth_action);
        let col_mv = col.execute_mv(&query).unwrap();

        for (scheme, got) in [("row-sql", &row_sql), ("row-mv", &row_mv),
                              ("col-sql", &col_sql), ("col-mv", &col_mv)] {
            prop_assert_eq!(got.rows.len(), reference.rows.len(), "{} on {}", scheme, query);
            for (a, b) in got.rows.iter().zip(reference.rows.iter()) {
                prop_assert_eq!(&a.cohort, &b.cohort, "{}", scheme);
                prop_assert_eq!(a.age, b.age, "{}", scheme);
                prop_assert_eq!(a.size, b.size, "{}", scheme);
                for (x, y) in a.measures.iter().zip(b.measures.iter()) {
                    prop_assert!(x.approx_eq(y), "{}: {:?} vs {:?}", scheme, x, y);
                }
            }
        }
    }

    #[test]
    fn compression_roundtrips_random_tables(
        tuples in proptest::collection::vec(raw_tuple(), 0..150),
        chunk_size in prop::sample::select(vec![4usize, 32, 1024]),
    ) {
        let table = build_table(tuples);
        let compressed = CompressedTable::build(
            &table,
            CompressionOptions::with_chunk_size(chunk_size),
        ).unwrap();
        let back = compressed.decompress().unwrap();
        prop_assert_eq!(back.rows(), table.rows());

        // Persistence roundtrip too.
        let bytes = cohana::storage::persist::to_bytes(&compressed);
        let re = cohana::storage::persist::from_bytes(&bytes).unwrap();
        let re_table = re.decompress().unwrap();
        prop_assert_eq!(re_table.rows(), table.rows());
    }
}
