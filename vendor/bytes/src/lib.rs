//! Minimal vendored subset of the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this local
//! crate provides exactly the API surface the workspace uses: `Bytes`,
//! `BytesMut`, and the little-endian `Buf`/`BufMut` accessors. Semantics
//! match the real crate for this subset; the zero-copy slicing machinery of
//! the real `bytes` is intentionally absent.

use std::ops::Deref;

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    /// Copy into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.0
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Write access to a byte buffer (little-endian integer putters).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access over a byte cursor (little-endian integer getters).
///
/// Callers must check `remaining()` before reading; like the real crate,
/// the getters panic when the buffer is exhausted.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy out `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self[..dst.len()]);
        self.advance(dst.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u16_le(), 0xBEEF);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cur.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(cur.remaining(), 3);
        cur.advance(1);
        assert_eq!(cur, b"yz");
        assert!(cur.has_remaining());
    }
}
