//! Minimal vendored subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the API surface the workspace's `benches/` use — `Criterion`,
//! `BenchmarkGroup`, `Bencher` (`iter` / `iter_batched`), `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis it runs a short warm-up, then
//! measures for the configured measurement time and prints the mean
//! iteration latency. Good enough to compare order-of-magnitude effects,
//! which is what the paper-reproduction benches are after.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a value/computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch setup granularity for [`Bencher::iter_batched`]; accepted for
/// source compatibility, the shim always runs one setup per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Work performed per iteration, used to derive throughput rates.
///
/// Set on a group via [`BenchmarkGroup::throughput`]; the per-iteration
/// element/byte count is divided by the measured iteration latency and the
/// rate is printed alongside it and written into the JSON-lines report
/// (`elements_per_sec` / `bytes_per_sec`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements (e.g. rows scanned) per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// (total elapsed, iterations) of the measurement phase.
    result: Option<(Duration, u64)>,
    /// Per-iteration latencies in seconds, in execution order. Percentiles
    /// over these land in the JSON-lines report (`p50_seconds` /
    /// `p99_seconds`) so latency *variance* — not just the mean — is a
    /// recorded number (the morsel-scheduler benches assert on the tail).
    samples: Vec<f64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let start = Instant::now();
        let deadline = start + self.measurement;
        let mut iters = 0u64;
        let mut samples = Vec::new();
        loop {
            let t = Instant::now();
            black_box(routine());
            samples.push(t.elapsed().as_secs_f64());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
        self.samples = samples;
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let warm_deadline = Instant::now() + self.warm_up;
        while Instant::now() < warm_deadline {
            black_box(routine(setup()));
        }
        let deadline = Instant::now() + self.measurement;
        let mut iters = 0u64;
        let mut measured = Duration::ZERO;
        let mut samples = Vec::new();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let d = start.elapsed();
            measured += d;
            samples.push(d.as_secs_f64());
            iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((measured, iters));
        self.samples = samples;
    }
}

/// Nearest-rank percentile of unsorted latency samples (`p` in 0..=100).
/// With a single sample every percentile is that sample, which keeps
/// smoke-mode (one-iteration) reports well-formed.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// A named collection of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    warm_up: Duration,
    measurement: Duration,
    smoke: bool,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the measurement phase duration (ignored in smoke mode).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !self.smoke {
            self.measurement = d;
        }
        self
    }

    /// Declare the work each iteration performs; subsequent benches in the
    /// group report a derived rate next to the iteration latency.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Set the warm-up phase duration (ignored in smoke mode).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !self.smoke {
            self.warm_up = d;
        }
        self
    }

    /// Accepted for source compatibility; the shim is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
            samples: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.to_string(), bencher.result, &bencher.samples);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            result: None,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), bencher.result, &bencher.samples);
        self
    }

    fn report(&mut self, id: &str, result: Option<(Duration, u64)>, samples: &[f64]) {
        let full = format!("{}/{}", self.name, id);
        match result {
            Some((elapsed, iters)) if iters > 0 => {
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let rate = self.throughput.map(|t| format_rate(t, per_iter)).unwrap_or_default();
                self.criterion.println(&format!(
                    "{full:<52} {:>12}  ({iters} iters){rate}",
                    format_time(per_iter)
                ));
                self.criterion.record(&full, per_iter, iters, self.throughput, samples);
            }
            _ => self.criterion.println(&format!("{full:<52} {:>12}", "no samples")),
        }
    }

    /// Finish the group (formatting no-op in the shim).
    pub fn finish(&mut self) {}
}

fn format_rate(t: Throughput, seconds_per_iter: f64) -> String {
    let (n, unit) = match t {
        Throughput::Elements(n) => (n, "elem/s"),
        Throughput::Bytes(n) => (n, "B/s"),
    };
    let rate = n as f64 / seconds_per_iter.max(f64::MIN_POSITIVE);
    if rate >= 1e9 {
        format!("  {:.2} G{unit}", rate / 1e9)
    } else if rate >= 1e6 {
        format!("  {:.2} M{unit}", rate / 1e6)
    } else if rate >= 1e3 {
        format!("  {:.2} K{unit}", rate / 1e3)
    } else {
        format!("  {rate:.1} {unit}")
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    quiet: bool,
    /// Smoke mode (`COHANA_BENCH_SMOKE=1`): run each benchmark for exactly
    /// one iteration with no warm-up, so CI can execute every bench binary
    /// as a cheap bit-rot check instead of a measurement.
    smoke: bool,
    /// Machine-readable report (`COHANA_BENCH_REPORT=path`): every finished
    /// benchmark appends one JSON line `{"bench", "seconds_per_iter",
    /// "iters"}` to the file. Bench binaries run sequentially, so appending
    /// from each is race-free; CI uploads the accumulated file as the
    /// per-push perf-trajectory artifact.
    report_path: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quiet: false,
            smoke: std::env::var_os("COHANA_BENCH_SMOKE").is_some(),
            report_path: std::env::var_os("COHANA_BENCH_REPORT").map(Into::into),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (warm_up, measurement) = if self.smoke {
            // Zero budgets: the timing loops always run one iteration.
            (Duration::ZERO, Duration::ZERO)
        } else {
            (Duration::from_millis(300), Duration::from_secs(1))
        };
        let smoke = self.smoke;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            warm_up,
            measurement,
            smoke,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark with default timing settings.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(name.clone()).bench_function("", f);
        self
    }

    fn println(&mut self, line: &str) {
        if !self.quiet {
            println!("{line}");
        }
    }

    /// Append one benchmark's result to the JSON-lines report file, if
    /// configured. Best-effort: an unwritable report never fails a bench.
    fn record(
        &mut self,
        bench: &str,
        seconds_per_iter: f64,
        iters: u64,
        throughput: Option<Throughput>,
        samples: &[f64],
    ) {
        let Some(path) = &self.report_path else { return };
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
            use std::io::Write;
            let escaped: String = bench
                .chars()
                .flat_map(|c| match c {
                    '"' | '\\' => vec!['\\', c],
                    c => vec![c],
                })
                .collect();
            let rate = match throughput {
                Some(Throughput::Elements(n)) => format!(
                    ", \"elements_per_iter\": {n}, \"elements_per_sec\": {:e}",
                    n as f64 / seconds_per_iter.max(f64::MIN_POSITIVE)
                ),
                Some(Throughput::Bytes(n)) => format!(
                    ", \"bytes_per_iter\": {n}, \"bytes_per_sec\": {:e}",
                    n as f64 / seconds_per_iter.max(f64::MIN_POSITIVE)
                ),
                None => String::new(),
            };
            let tail = match (percentile(samples, 50.0), percentile(samples, 99.0)) {
                (Some(p50), Some(p99)) => {
                    format!(", \"p50_seconds\": {p50:e}, \"p99_seconds\": {p99:e}")
                }
                _ => String::new(),
            };
            let _ = writeln!(
                f,
                "{{\"bench\": \"{escaped}\", \"seconds_per_iter\": {seconds_per_iter:e}, \
                 \"iters\": {iters}{rate}{tail}}}"
            );
        }
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_bench_runs() {
        let mut c = Criterion { quiet: true, smoke: false, report_path: None };
        let mut g = c.benchmark_group("g");
        g.measurement_time(Duration::from_millis(5)).warm_up_time(Duration::from_millis(1));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn report_file_gets_one_json_line_per_bench() {
        let path = std::env::temp_dir().join("criterion-shim-report-test.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion { quiet: true, smoke: true, report_path: Some(path.clone()) };
        let mut g = c.benchmark_group("grp");
        g.bench_function("one", |b| b.iter(|| black_box(1u64) + 1));
        g.bench_function("two", |b| b.iter(|| black_box(2u64) + 2));
        g.finish();
        let report = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"bench\": \"grp/one\""));
        assert!(lines[0].contains("\"iters\": 1"));
        assert!(lines[1].contains("\"bench\": \"grp/two\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn throughput_rate_lands_in_report() {
        let path = std::env::temp_dir().join("criterion-shim-throughput-test.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion { quiet: true, smoke: true, report_path: Some(path.clone()) };
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(1_000));
        g.bench_function("rows", |b| b.iter(|| black_box(1u64) + 1));
        g.finish();
        let report = std::fs::read_to_string(&path).unwrap();
        assert!(report.contains("\"elements_per_iter\": 1000"));
        assert!(report.contains("\"elements_per_sec\": "));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn percentile_uses_nearest_rank() {
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 50.0), Some(7.0));
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&samples, 50.0), Some(50.0));
        assert_eq!(percentile(&samples, 99.0), Some(99.0));
        assert_eq!(percentile(&samples, 100.0), Some(100.0));
        // Unsorted input sorts internally.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50.0), Some(2.0));
    }

    #[test]
    fn report_lines_carry_latency_percentiles() {
        let path = std::env::temp_dir().join("criterion-shim-percentile-test.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion { quiet: true, smoke: true, report_path: Some(path.clone()) };
        let mut g = c.benchmark_group("grp");
        g.bench_function("one", |b| b.iter(|| black_box(1u64) + 1));
        g.finish();
        let report = std::fs::read_to_string(&path).unwrap();
        assert!(report.contains("\"p50_seconds\": "), "missing p50: {report}");
        assert!(report.contains("\"p99_seconds\": "), "missing p99: {report}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn smoke_mode_runs_single_iterations() {
        let mut c = Criterion { quiet: true, smoke: true, report_path: None };
        let mut g = c.benchmark_group("g");
        // Settings are ignored in smoke mode: still exactly one iteration.
        g.measurement_time(Duration::from_secs(60)).warm_up_time(Duration::from_secs(60));
        let mut iters = 0u32;
        g.bench_function("count", |b| b.iter(|| iters += 1));
        g.finish();
        assert_eq!(iters, 1);
    }
}
