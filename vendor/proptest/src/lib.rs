//! Minimal vendored subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the slice of the proptest API the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`, range / tuple / `Just` /
//! `select` / `vec` / simple-regex strategies, the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, and `prop_assert_eq!` macros, and
//! [`ProptestConfig`] with a `cases` knob.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case fails with its concrete inputs; the
//!   deterministic seed (derived from the test name) makes reruns reproduce
//!   it exactly;
//! * **regex strategies** support only the `[class]{m,n}` shape (optionally
//!   a bare class or literal), which is what the tests use;
//! * `prop_assert*` are plain `assert*` — failures panic immediately.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// A generator seeded from the test's name, so every test has a stable
    /// but distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw from an integer range.
    pub fn in_range<T, R: rand::SampleRange<T>>(&mut self, r: R) -> T {
        self.0.random_range(r)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.0.random::<f64>()
    }
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { strategy: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.strategy.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.in_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_strategy_for_tuples {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
}

/// Types with a canonical full-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value uniformly over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Full-domain strategy for `T` (see [`Arbitrary`]).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// One arm of a [`Union`]: a boxed generator function.
type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Union of same-valued strategies; built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// An empty union (must gain at least one arm before generating).
    pub fn empty() -> Self {
        Union { arms: Vec::new() }
    }

    /// Add an arm.
    pub fn or<S>(mut self, strategy: S) -> Self
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms.push(Box::new(move |rng| strategy.generate(rng)));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.arms.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.in_range(0..self.arms.len());
        (self.arms[idx])(rng)
    }
}

/// Strategy for `&str` patterns of the shape `[class]{m,n}` (plus bare
/// classes and literals) — the subset the workspace's tests use.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_simple_pattern(self);
        let len = rng.in_range(lo..hi + 1);
        (0..len).map(|_| alphabet[rng.in_range(0..alphabet.len())]).collect()
    }
}

/// Parse `[a-z]{1,6}`-style patterns into (alphabet, min_len, max_len).
fn parse_simple_pattern(pattern: &str) -> (Vec<char>, usize, usize) {
    let mut chars = pattern.chars().peekable();
    let mut alphabet = Vec::new();
    if chars.peek() == Some(&'[') {
        chars.next();
        let mut class: Vec<char> = Vec::new();
        for c in chars.by_ref() {
            if c == ']' {
                break;
            }
            class.push(c);
        }
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                assert!(a <= b, "bad char range in pattern {pattern:?}");
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
    } else {
        // Literal prefix (no class): every non-brace char is the alphabet of
        // a fixed string; treated as a one-symbol-at-a-time choice.
        for c in chars.by_ref() {
            if c == '{' {
                break;
            }
            alphabet.push(c);
        }
        assert!(
            !alphabet.is_empty(),
            "unsupported regex pattern {pattern:?} (vendored proptest supports [class]{{m,n}})"
        );
        return (alphabet.clone(), alphabet.len(), alphabet.len());
    }
    let rest: String = chars.collect();
    if rest.is_empty() {
        return (alphabet, 1, 1);
    }
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported regex pattern {pattern:?}"));
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = body.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(!alphabet.is_empty() && lo <= hi, "bad pattern {pattern:?}");
    (alphabet, lo, hi)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`: vectors of `element` draws.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.in_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespaced strategy constructors mirroring `proptest::prop`.
pub mod prop {
    /// Sampling from explicit value lists.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice from a vector of values.
        #[derive(Debug, Clone)]
        pub struct Select<T: Clone>(Vec<T>);

        /// Strategy choosing uniformly among `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.in_range(0..self.0.len())].clone()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Strategy for a fair coin flip.
        #[derive(Debug, Clone, Copy)]
        pub struct AnyBool;

        /// Either boolean, uniformly.
        pub const ANY: AnyBool = AnyBool;

        impl Strategy for AnyBool {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    pub use super::collection;
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert within a property test (no shrinking; plain panic on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let union = $crate::Union::empty();
        $(let union = union.or($arm);)+
        union
    }};
}

/// Define property tests: each function runs `config.cases` times with
/// freshly generated inputs from the `in` strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @config $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @config $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@config $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let strategy = ($($strategy,)+);
            for _case in 0..config.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = crate::TestRng::deterministic("ranges_and_tuples");
        let s = (0u8..10, 5i64..6, 0usize..3);
        for _ in 0..200 {
            let (a, b, c) = crate::Strategy::generate(&s, &mut rng);
            assert!(a < 10 && b == 5 && c < 3);
        }
    }

    #[test]
    fn oneof_and_map_and_select() {
        let mut rng = crate::TestRng::deterministic("oneof");
        let s = prop_oneof![Just(None), prop::sample::select(vec![1i64, 2, 3]).prop_map(Some),];
        let mut seen_none = false;
        let mut seen_some = false;
        for _ in 0..100 {
            match crate::Strategy::generate(&s, &mut rng) {
                None => seen_none = true,
                Some(v) => {
                    assert!((1..=3).contains(&v));
                    seen_some = true;
                }
            }
        }
        assert!(seen_none && seen_some);
    }

    #[test]
    fn regex_and_vec_strategies() {
        let mut rng = crate::TestRng::deterministic("regex");
        let words = crate::collection::vec("[a-z]{1,6}", 0..10);
        for _ in 0..50 {
            for w in crate::Strategy::generate(&words, &mut rng) {
                assert!((1..=6).contains(&w.len()));
                assert!(w.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_form_works(x in 0u64..100, flip in prop::bool::ANY, byte in any::<u8>()) {
            prop_assert!(x < 100);
            let _ = (flip, byte);
            prop_assert_eq!(x + 1, 1 + x, "commutes for {}", x);
        }
    }
}
