//! Minimal vendored subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the small deterministic-PRNG surface the workspace uses:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `RngExt` sampling
//! helpers (`random`, `random_range`, `random_bool`).
//!
//! The generator is SplitMix64 — not cryptographic, but fast, seedable, and
//! fully deterministic, which is all the synthetic data generator needs.
//! Streams differ from the real `rand` crate; the workspace only relies on
//! determinism for a fixed seed, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// PRNG implementations.
pub mod rngs {
    /// The standard deterministic PRNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        /// Next raw 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut rng = StdRng { state: seed ^ 0x5DEE_CE66_D0BE_E7E5 };
            // Warm up so nearby seeds diverge immediately.
            rng.next_u64();
            rng
        }
    }
}

use rngs::StdRng;

/// Types samplable uniformly over their full domain via [`RngExt::random`].
pub trait RandomValue {
    /// Draw one value.
    fn random(rng: &mut StdRng) -> Self;
}

impl RandomValue for f64 {
    #[inline]
    fn random(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for u64 {
    #[inline]
    fn random(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl RandomValue for bool {
    #[inline]
    fn random(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable via [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics on an empty range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty random_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty random_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Sampling helpers on a PRNG.
pub trait RngExt {
    /// A uniform value over the type's full domain (`[0, 1)` for floats).
    fn random<T: RandomValue>(&mut self) -> T;

    /// A uniform value from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for StdRng {
    #[inline]
    fn random<T: RandomValue>(&mut self) -> T {
        T::random(self)
    }

    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.random_range(0usize..3);
            assert!(u < 3);
            let w: u8 = rng.random_range(1u8..=255);
            assert!(w >= 1);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "{hits}");
    }
}
